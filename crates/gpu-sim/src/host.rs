//! The OpenCL-like host API of the simulated GPU.
//!
//! Mirrors the host-side object model the paper's framework is written
//! against (§V): a device is opened (paying the runtime-initialization cost
//! of "hundreds of milliseconds", §VI-B), buffers are allocated against the
//! device's global-memory and max-allocation limits (Table I), commands are
//! enqueued on in-order command queues, and every command yields an event
//! with OpenCL-style profiling timestamps (the paper uses event profiling
//! for kernel times and the host clock for end-to-end times, §VI-A-1).
//!
//! Timing is fully virtual and deterministic. Two device-side resources
//! serialize commands across queues — the host↔device link (one transfer at
//! a time) and the compute engine (one kernel at a time) — which is exactly
//! what makes double buffering on two queues overlap transfer with compute.
//!
//! Functionally, buffers hold real `u32` words and kernels run real Rust
//! closures, so simulated results are bit-exact and are validated against
//! the scalar reference throughout the workspace.

use std::cell::RefCell;

use snp_faults::{checksum_words, DeviceFault, FaultOp, FaultPlan, FaultStats, Injection};
use snp_gpu_model::DeviceSpec;
use snp_trace::{ArgValue, TimeDomain, Tracer, TrackId};

use crate::detailed::simulate_core;
use crate::isa::Program;
use crate::macro_engine::{kernel_time, KernelTime, Traffic};
use crate::profile::{KernelProfile, ProfileEngine};

/// Handle to a device buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BufferId(usize);

impl BufferId {
    /// Stable zero-based index of this buffer (for diagnostics and logs).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to an in-order command queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueueId(usize);

impl QueueId {
    /// Stable zero-based index of this queue.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to a command event.
///
/// Dropping an `EventId` silently severs the dependency chain it was meant
/// to carry — exactly the class of bug the command-DAG verifier exists to
/// catch — so discarding one is a compile-time warning.
#[must_use = "an unused EventId cannot order later commands or be profiled"]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

impl EventId {
    /// Stable zero-based index of this event.
    pub fn index(&self) -> usize {
        self.0
    }
}

/// OpenCL-style event profiling timestamps, in virtual nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventProfile {
    /// When the host enqueued the command.
    pub queued_ns: u64,
    /// When the command was submitted to the device (== queued here).
    pub submit_ns: u64,
    /// When execution began.
    pub start_ns: u64,
    /// When execution finished.
    pub end_ns: u64,
}

impl EventProfile {
    /// Execution duration (`end - start`) — what `CL_PROFILING_COMMAND_START/END`
    /// subtraction gives the paper's kernel measurements.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }
}

/// How a kernel's duration is modeled.
#[derive(Debug, Clone)]
pub enum KernelCost {
    /// Cycles per core were computed analytically (macro engine).
    Analytic {
        /// Cycles one core spends (all active cores do equal work).
        core_cycles: f64,
        /// Concurrently active compute cores.
        active_cores: u32,
        /// Global-memory traffic for the bandwidth bound.
        traffic: Traffic,
    },
    /// Run the detailed engine on the per-core program (small launches and
    /// microbenchmarks).
    Detailed {
        /// The per-core thread-group program.
        program: Program,
        /// Resident thread groups per core.
        groups_per_core: u32,
        /// Concurrently active compute cores.
        active_cores: u32,
        /// Global-memory traffic for the bandwidth bound.
        traffic: Traffic,
    },
}

/// Errors surfaced by the host API.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A single allocation exceeded `CL_DEVICE_MAX_MEM_ALLOC_SIZE`.
    AllocTooLarge {
        /// Requested bytes.
        requested: u64,
        /// The device limit.
        limit: u64,
    },
    /// The device's global memory is exhausted.
    OutOfDeviceMemory {
        /// Requested bytes.
        requested: u64,
        /// Bytes still available.
        available: u64,
    },
    /// A handle referred to a released or foreign object.
    InvalidHandle(&'static str),
    /// A transfer or kernel argument range fell outside its buffer.
    OutOfRange {
        /// Description of the access.
        what: &'static str,
    },
    /// The detailed engine exceeded its cycle budget.
    DetailedBudget,
    /// The command-DAG verifier found an ordering hazard in the enqueued
    /// stream (see `snp-verify`); the payload is the rendered report.
    Hazard(String),
    /// An injected device fault (see `snp-faults`): the runtime rejected or
    /// aborted the command. The payload is the `source()` of this error.
    DeviceFault(DeviceFault),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::AllocTooLarge { requested, limit } => {
                write!(
                    f,
                    "allocation of {requested} B exceeds the device max of {limit} B"
                )
            }
            SimError::OutOfDeviceMemory {
                requested,
                available,
            } => {
                write!(
                    f,
                    "allocation of {requested} B exceeds remaining device memory ({available} B)"
                )
            }
            SimError::InvalidHandle(what) => write!(f, "invalid {what} handle"),
            SimError::OutOfRange { what } => write!(f, "{what} out of buffer range"),
            SimError::DetailedBudget => write!(f, "detailed simulation budget exceeded"),
            SimError::Hazard(report) => write!(f, "command-stream hazard: {report}"),
            SimError::DeviceFault(fault) => write!(f, "device fault: {fault}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::DeviceFault(fault) => Some(fault),
            _ => None,
        }
    }
}

/// What kind of command a [`CommandRecord`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// Host→device transfer (functional or virtual).
    Write,
    /// Device→host transfer (functional or virtual).
    Read,
    /// Kernel launch (functional or timing-only).
    Kernel,
    /// Legacy timing-only transfer with no buffer identity
    /// ([`Gpu::enqueue_virtual_transfer`]); invisible to hazard analysis.
    UntaggedTransfer,
}

/// A half-open word range `[lo, hi)` of one device buffer touched by a
/// command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferRange {
    /// The buffer.
    pub buffer: BufferId,
    /// First word touched.
    pub lo: usize,
    /// One past the last word touched.
    pub hi: usize,
}

impl BufferRange {
    /// Whether two ranges touch at least one common word of one buffer.
    pub fn overlaps(&self, other: &BufferRange) -> bool {
        self.buffer == other.buffer && self.lo < other.hi && other.lo < self.hi
    }
}

/// One enqueued command as the host observed it: what it was, where it ran,
/// what it waited on, and which buffer ranges it read and wrote. The
/// record's position in [`CommandLog::commands`] equals its event index —
/// every command yields exactly one event, in enqueue order.
#[derive(Debug, Clone)]
pub struct CommandRecord {
    /// Command kind.
    pub kind: CommandKind,
    /// The in-order queue it was enqueued on.
    pub queue: QueueId,
    /// The event the enqueue returned.
    pub event: EventId,
    /// The explicit wait-list passed at enqueue.
    pub deps: Vec<EventId>,
    /// Buffer ranges the command reads.
    pub reads: Vec<BufferRange>,
    /// Buffer ranges the command writes.
    pub writes: Vec<BufferRange>,
    /// The command's virtual-time profile.
    pub profile: EventProfile,
}

/// Everything a device enqueued, in order — the input to `snp-verify`'s
/// command-DAG race detector. Obtained from [`Gpu::command_log`].
#[derive(Debug, Clone, Default)]
pub struct CommandLog {
    /// Commands in enqueue order (index == event index).
    pub commands: Vec<CommandRecord>,
    /// Number of queues that existed when the log was taken.
    pub queue_count: usize,
    /// Per event: whether the host ever queried its profile
    /// ([`Gpu::event_profile`]). Feeds the unused-event diagnostic.
    pub profiled: Vec<bool>,
}

#[derive(Debug)]
struct BufferSlot {
    /// `None` for *virtual* buffers: device capacity is reserved and timed,
    /// but no host memory backs the words (timing-only runs at NDIS scale
    /// would otherwise need gigabytes of host RAM).
    words: Option<Vec<u32>>,
    len_words: usize,
}

#[derive(Debug, Clone, Copy)]
struct EventRecord {
    profile: EventProfile,
}

#[derive(Debug)]
struct QueueState {
    last_end_ns: u64,
    track: TrackId,
}

#[derive(Debug)]
struct State {
    host_now_ns: u64,
    buffers: Vec<Option<BufferSlot>>,
    allocated_bytes: u64,
    queues: Vec<QueueState>,
    events: Vec<EventRecord>,
    log: Vec<CommandRecord>,
    profiled: Vec<bool>,
    /// Hardware-counter profiles of kernel launches, keyed by event index
    /// (kernels are a sparse subset of events; indices ascend).
    kernel_profiles: Vec<(usize, KernelProfile)>,
    link_free_ns: u64,
    compute_free_ns: u64,
    detailed_cycle_budget: u64,
    faults: Option<FaultPlan>,
    cost_scale: CostScale,
}

/// What an injected fault does to the command currently being enqueued
/// (beyond the hard-failure case, which returns early).
enum FaultEffect {
    None,
    /// Occupy the command's resource `ns` longer.
    Stall(u64),
    /// Deliver the readback with one bit flipped, chosen from the entropy.
    Corrupt(u64),
}

impl FaultEffect {
    fn stall_ns(&self) -> u64 {
        match self {
            FaultEffect::Stall(ns) => *ns,
            _ => 0,
        }
    }
}

/// Virtual-cost scaling for what-if replay: multiplies every kernel and/or
/// transfer duration the simulator charges, leaving functional behaviour,
/// ordering, fault injection, and stall penalties untouched. A Coz-style
/// "what if kernels were 20% faster" experiment is
/// `CostScale { kernel: 0.8, ..Default::default() }`.
///
/// Host packing is deliberately *not* scalable here: packing time is
/// charged on the host clock from the device spec by the engine, not by
/// the simulator's command timing, so a pack scale would desynchronize the
/// engine's timing reconciliation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostScale {
    /// Multiplier on kernel execution durations.
    pub kernel: f64,
    /// Multiplier on host↔device transfer durations (writes, reads,
    /// checksum readbacks, virtual transfers).
    pub transfer: f64,
}

impl Default for CostScale {
    fn default() -> Self {
        CostScale {
            kernel: 1.0,
            transfer: 1.0,
        }
    }
}

impl CostScale {
    /// Whether this scale is the identity (no perturbation).
    pub fn is_identity(&self) -> bool {
        self.kernel == 1.0 && self.transfer == 1.0
    }

    /// Applies `factor` to a duration. The identity factor returns the
    /// input unchanged (bit-exact: default runs must stay byte-identical
    /// to a build without scaling); otherwise rounds to the nearest ns
    /// with a 1 ns floor so scaled commands still take time.
    fn apply(factor: f64, ns: u64) -> u64 {
        if factor == 1.0 {
            ns
        } else {
            ((ns as f64 * factor).round() as u64).max(1)
        }
    }

    /// Scales a kernel duration.
    pub fn kernel_ns(&self, ns: u64) -> u64 {
        Self::apply(self.kernel, ns)
    }

    /// Scales a transfer duration.
    pub fn transfer_ns(&self, ns: u64) -> u64 {
        Self::apply(self.transfer, ns)
    }
}

/// A simulated GPU device instance.
pub struct Gpu {
    spec: DeviceSpec,
    tracer: Tracer,
    host_track: TrackId,
    state: RefCell<State>,
}

impl Gpu {
    /// Opens the device, paying the runtime-initialization cost on the host
    /// timeline (kernel *compilation* is excluded, as in the paper's
    /// end-to-end timing, §VI-B).
    pub fn new(spec: DeviceSpec) -> Gpu {
        Self::with_tracer(spec, Tracer::disabled())
    }

    /// Like [`new`](Self::new), but recording every command's virtual-time
    /// profile as spans on `tracer`: the device-open span on a host track,
    /// and one span per enqueued transfer/kernel on its queue's track. All
    /// spans carry the simulator's virtual timestamps ([`TimeDomain::Virtual`]),
    /// so the exported timeline is the device timeline the profiling events
    /// of §VI-A-1 describe.
    pub fn with_tracer(spec: DeviceSpec, tracer: Tracer) -> Gpu {
        let init = spec.transfer.runtime_init_ns;
        let host_track = tracer.track(format!("host · {}", spec.name), TimeDomain::Virtual);
        tracer.span_with(
            host_track,
            "init",
            "device open",
            0,
            init,
            vec![("runtime_init_ns", init.into())],
        );
        Gpu {
            spec,
            tracer,
            host_track,
            state: RefCell::new(State {
                host_now_ns: init,
                buffers: Vec::new(),
                allocated_bytes: 0,
                queues: Vec::new(),
                events: Vec::new(),
                log: Vec::new(),
                profiled: Vec::new(),
                kernel_profiles: Vec::new(),
                link_free_ns: init,
                compute_free_ns: init,
                detailed_cycle_budget: 500_000_000,
                faults: None,
                cost_scale: CostScale::default(),
            }),
        }
    }

    /// The tracer this device records into (disabled by default).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The virtual-time track for host-side activity (device open, packing).
    pub fn host_track(&self) -> TrackId {
        self.host_track
    }

    /// The device specification in use.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Current host virtual time in nanoseconds (the "CPU realtime clock"
    /// of §VI-A-1).
    pub fn now_ns(&self) -> u64 {
        self.state.borrow().host_now_ns
    }

    /// Advances the host clock by `ns` — models host-side work (e.g. packing
    /// bit matrices into transfer buffers) happening on the CPU.
    pub fn advance_host_ns(&self, ns: u64) {
        self.state.borrow_mut().host_now_ns += ns;
    }

    /// Arms deterministic fault injection: every subsequent host command
    /// consults `plan` and may time out, launch-fail, stall, deliver
    /// corrupted readback words, or fail permanently (device loss). With no
    /// plan armed (the default) the device is perfectly healthy and no
    /// fault bookkeeping runs.
    pub fn set_fault_plan(&self, plan: FaultPlan) {
        self.state.borrow_mut().faults = Some(plan);
    }

    /// Arms a virtual-cost scale for what-if replay: every subsequently
    /// enqueued kernel and transfer is charged its scaled duration. The
    /// default ([`CostScale::is_identity`]) leaves timing bit-exact.
    pub fn set_cost_scale(&self, scale: CostScale) {
        self.state.borrow_mut().cost_scale = scale;
    }

    /// Counts of faults injected so far (all zero when no plan is armed).
    pub fn fault_stats(&self) -> FaultStats {
        self.state
            .borrow()
            .faults
            .as_ref()
            .map(|f| f.stats())
            .unwrap_or_default()
    }

    /// Whether the armed fault plan has permanently lost this device.
    pub fn device_lost(&self) -> bool {
        self.state
            .borrow()
            .faults
            .as_ref()
            .is_some_and(|f| f.device_lost())
    }

    /// Consults the armed fault plan (if any) for the command being
    /// enqueued. Hard failures return the typed error; stalls and
    /// corruption come back as effects the enqueue path applies.
    fn consult_faults(
        st: &mut State,
        op: FaultOp,
        corruptible: bool,
    ) -> Result<FaultEffect, SimError> {
        match st.faults.as_mut().and_then(|f| f.next(op, corruptible)) {
            None => Ok(FaultEffect::None),
            Some(Injection::Fail(fault)) => Err(SimError::DeviceFault(fault)),
            Some(Injection::Stall { ns }) => Ok(FaultEffect::Stall(ns)),
            Some(Injection::CorruptBit { entropy }) => Ok(FaultEffect::Corrupt(entropy)),
        }
    }

    /// Convenience: charges host packing time for `bytes` at the modeled
    /// host packing rate.
    pub fn host_pack(&self, bytes: u64) {
        let ns = self.spec.transfer.pack_ns(bytes);
        let start = self.now_ns();
        self.advance_host_ns(ns);
        if self.tracer.is_enabled() {
            self.tracer.span_with(
                self.host_track,
                "pack",
                "host pack",
                start,
                start + ns,
                vec![("bytes", bytes.into())],
            );
        }
    }

    /// Bytes currently allocated on the device.
    pub fn allocated_bytes(&self) -> u64 {
        self.state.borrow().allocated_bytes
    }

    /// Creates an in-order command queue.
    pub fn create_queue(&self) -> QueueId {
        self.create_queue_labeled("")
    }

    /// Creates an in-order command queue whose trace track carries `label`
    /// (e.g. `"transfer"` / `"compute"`), so timelines read without
    /// cross-referencing queue indices.
    pub fn create_queue_labeled(&self, label: &str) -> QueueId {
        let mut st = self.state.borrow_mut();
        let idx = st.queues.len();
        let track = if self.tracer.is_enabled() {
            let name = if label.is_empty() {
                format!("queue {idx}")
            } else {
                format!("queue {idx} ({label})")
            };
            self.tracer.track(name, TimeDomain::Virtual)
        } else {
            self.host_track
        };
        let now = st.host_now_ns;
        st.queues.push(QueueState {
            last_end_ns: now,
            track,
        });
        QueueId(idx)
    }

    /// Allocates a device buffer of `words` 32-bit words, enforcing the
    /// Table I max-allocation and global-memory limits.
    pub fn create_buffer(&self, words: usize) -> Result<BufferId, SimError> {
        let bytes = words as u64 * 4;
        if bytes > self.spec.max_alloc_bytes {
            return Err(SimError::AllocTooLarge {
                requested: bytes,
                limit: self.spec.max_alloc_bytes,
            });
        }
        let mut st = self.state.borrow_mut();
        let available = self
            .spec
            .global_mem_bytes
            .saturating_sub(st.allocated_bytes);
        if bytes > available {
            return Err(SimError::OutOfDeviceMemory {
                requested: bytes,
                available,
            });
        }
        st.allocated_bytes += bytes;
        st.buffers.push(Some(BufferSlot {
            words: Some(vec![0u32; words]),
            len_words: words,
        }));
        Ok(BufferId(st.buffers.len() - 1))
    }

    /// Allocates a *virtual* buffer: device capacity and limits are
    /// enforced and all transfers/kernels against it are timed, but no host
    /// memory backs the contents. Used by timing-only runs at database
    /// scale (e.g. Fig. 8's >20M-profile sweeps).
    pub fn create_virtual_buffer(&self, words: usize) -> Result<BufferId, SimError> {
        let bytes = words as u64 * 4;
        if bytes > self.spec.max_alloc_bytes {
            return Err(SimError::AllocTooLarge {
                requested: bytes,
                limit: self.spec.max_alloc_bytes,
            });
        }
        let mut st = self.state.borrow_mut();
        let available = self
            .spec
            .global_mem_bytes
            .saturating_sub(st.allocated_bytes);
        if bytes > available {
            return Err(SimError::OutOfDeviceMemory {
                requested: bytes,
                available,
            });
        }
        st.allocated_bytes += bytes;
        st.buffers.push(Some(BufferSlot {
            words: None,
            len_words: words,
        }));
        Ok(BufferId(st.buffers.len() - 1))
    }

    /// Releases a buffer, returning its bytes to the pool.
    pub fn release_buffer(&self, id: BufferId) -> Result<(), SimError> {
        let mut st = self.state.borrow_mut();
        let slot = st
            .buffers
            .get_mut(id.0)
            .ok_or(SimError::InvalidHandle("buffer"))?;
        match slot.take() {
            Some(b) => {
                st.allocated_bytes -= b.len_words as u64 * 4;
                Ok(())
            }
            None => Err(SimError::InvalidHandle("buffer")),
        }
    }

    /// Size of a buffer in words.
    pub fn buffer_words(&self, id: BufferId) -> Result<usize, SimError> {
        let st = self.state.borrow();
        st.buffers
            .get(id.0)
            .and_then(|s| s.as_ref())
            .map(|b| b.len_words)
            .ok_or(SimError::InvalidHandle("buffer"))
    }

    fn resolve_deps(st: &State, deps: &[EventId]) -> Result<u64, SimError> {
        let mut t = 0u64;
        for d in deps {
            let e = st.events.get(d.0).ok_or(SimError::InvalidHandle("event"))?;
            t = t.max(e.profile.end_ns);
        }
        Ok(t)
    }

    /// Finalizes a command: updates queue state, stores the profiling
    /// record and the command-log entry, and (when tracing) emits the
    /// command's span on its queue's track. `args` is only evaluated when
    /// the tracer is enabled, keeping the disabled path allocation-free.
    #[allow(clippy::too_many_arguments)]
    fn record_event(
        &self,
        st: &mut State,
        queue: QueueId,
        start: u64,
        end: u64,
        queued: u64,
        cat: &'static str,
        name: &'static str,
        args: impl FnOnce() -> Vec<(&'static str, ArgValue)>,
        kind: CommandKind,
        deps: &[EventId],
        reads: Vec<BufferRange>,
        writes: Vec<BufferRange>,
    ) -> EventId {
        st.queues[queue.0].last_end_ns = end;
        if self.tracer.is_enabled() {
            let mut args = args();
            args.push(("queued_ns", queued.into()));
            self.tracer
                .span_with(st.queues[queue.0].track, cat, name, start, end, args);
        }
        let profile = EventProfile {
            queued_ns: queued,
            submit_ns: queued,
            start_ns: start,
            end_ns: end,
        };
        st.events.push(EventRecord { profile });
        st.profiled.push(false);
        let event = EventId(st.events.len() - 1);
        st.log.push(CommandRecord {
            kind,
            queue,
            event,
            deps: deps.to_vec(),
            reads,
            writes,
            profile,
        });
        event
    }

    /// Prices `cost` on this device and captures the launch's
    /// hardware-counter profile. The one shared implementation keeps the
    /// three kernel-enqueue entry points (functional, timed, timed-on)
    /// timing-identical — a property the engine's timing-only mode depends
    /// on.
    fn kernel_cost_time(
        &self,
        st: &State,
        cost: &KernelCost,
    ) -> Result<(KernelTime, KernelProfile), SimError> {
        match cost {
            KernelCost::Analytic {
                core_cycles,
                active_cores,
                traffic,
            } => {
                let kt = kernel_time(&self.spec, *core_cycles, *active_cores, *traffic);
                let profile = KernelProfile {
                    engine: ProfileEngine::Analytic,
                    core_cycles: *core_cycles,
                    active_cores: *active_cores,
                    groups_per_core: None,
                    traffic: *traffic,
                    time: kt,
                    total_instrs: None,
                    pipeline_busy: None,
                };
                Ok((kt, profile))
            }
            KernelCost::Detailed {
                program,
                groups_per_core,
                active_cores,
                traffic,
            } => {
                let budget = st.detailed_cycle_budget;
                let r = simulate_core(&self.spec, program, *groups_per_core, budget)
                    .map_err(|_| SimError::DetailedBudget)?;
                let kt = kernel_time(&self.spec, r.cycles as f64, *active_cores, *traffic);
                let profile = KernelProfile {
                    engine: ProfileEngine::Detailed,
                    core_cycles: r.cycles as f64,
                    active_cores: *active_cores,
                    groups_per_core: Some(*groups_per_core),
                    traffic: *traffic,
                    time: kt,
                    total_instrs: Some(r.total_instrs),
                    pipeline_busy: Some(r.pipeline_busy),
                };
                Ok((kt, profile))
            }
        }
    }

    /// Enqueues a host→device write of `data` into `buf` at `word_offset`.
    /// Functional copy happens with enqueue-order semantics; timing follows
    /// queue order, event deps, and link availability.
    pub fn enqueue_write(
        &self,
        queue: QueueId,
        buf: BufferId,
        word_offset: usize,
        data: &[u32],
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Write, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let bytes = data.len() as u64 * 4;
        let end = start
            + st.cost_scale
                .transfer_ns(self.spec.transfer.transfer_ns(bytes))
            + effect.stall_ns();
        st.link_free_ns = end;
        {
            let slot = st
                .buffers
                .get_mut(buf.0)
                .and_then(|s| s.as_mut())
                .ok_or(SimError::InvalidHandle("buffer"))?;
            let storage = slot
                .words
                .as_mut()
                .ok_or(SimError::InvalidHandle("buffer (virtual)"))?;
            let range = storage
                .get_mut(word_offset..word_offset + data.len())
                .ok_or(SimError::OutOfRange { what: "write" })?;
            range.copy_from_slice(data);
        }
        Ok(self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "write",
            || vec![("bytes", bytes.into())],
            CommandKind::Write,
            deps,
            Vec::new(),
            vec![BufferRange {
                buffer: buf,
                lo: word_offset,
                hi: word_offset + data.len(),
            }],
        ))
    }

    /// Enqueues a device→host read from `buf` at `word_offset` into `out`.
    /// With `blocking`, the host clock advances to the event's end (the
    /// OpenCL `CL_TRUE` blocking read).
    pub fn enqueue_read(
        &self,
        queue: QueueId,
        buf: BufferId,
        word_offset: usize,
        out: &mut [u32],
        deps: &[EventId],
        blocking: bool,
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Read, true)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let bytes = out.len() as u64 * 4;
        let end = start
            + st.cost_scale
                .transfer_ns(self.spec.transfer.transfer_ns(bytes))
            + effect.stall_ns();
        st.link_free_ns = end;
        {
            let slot = st
                .buffers
                .get(buf.0)
                .and_then(|s| s.as_ref())
                .ok_or(SimError::InvalidHandle("buffer"))?;
            let storage = slot
                .words
                .as_ref()
                .ok_or(SimError::InvalidHandle("buffer (virtual)"))?;
            let range = storage
                .get(word_offset..word_offset + out.len())
                .ok_or(SimError::OutOfRange { what: "read" })?;
            out.copy_from_slice(range);
        }
        if let FaultEffect::Corrupt(entropy) = effect {
            // The ECC-escape: the host receives the words with one bit
            // flipped, with no error from the runtime. Detection is the
            // caller's job (checksum the readback — DESIGN.md §10.3).
            if !out.is_empty() {
                let w = (entropy as usize) % out.len();
                let b = (entropy >> 32) % 32;
                out[w] ^= 1u32 << b;
            }
        }
        if blocking {
            st.host_now_ns = st.host_now_ns.max(end);
        }
        Ok(self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "read",
            || vec![("bytes", bytes.into())],
            CommandKind::Read,
            deps,
            vec![BufferRange {
                buffer: buf,
                lo: word_offset,
                hi: word_offset + out.len(),
            }],
            Vec::new(),
        ))
    }

    /// Enqueues a device-side checksum of `words` words of `buf` at
    /// `word_offset`, read back as a blocking 8-byte transfer.
    ///
    /// Models a tiny reduction kernel folded into the readback path: the
    /// FNV-1a checksum is computed over the *device* copy of the words, so
    /// comparing it against [`checksum_words`](snp_faults::checksum_words)
    /// of the host copy detects corruption introduced on the link
    /// (DESIGN.md §10.3). The transfer is so short it is modeled as immune
    /// to bit corruption itself, but it still times out or stalls like any
    /// other read. Virtual buffers have no words to sum and are rejected.
    pub fn enqueue_checksum_read(
        &self,
        queue: QueueId,
        buf: BufferId,
        word_offset: usize,
        words: usize,
        deps: &[EventId],
    ) -> Result<(u64, EventId), SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Read, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let end = start
            + st.cost_scale.transfer_ns(self.spec.transfer.transfer_ns(8))
            + effect.stall_ns();
        st.link_free_ns = end;
        let sum = {
            let slot = st
                .buffers
                .get(buf.0)
                .and_then(|s| s.as_ref())
                .ok_or(SimError::InvalidHandle("buffer"))?;
            let storage = slot
                .words
                .as_ref()
                .ok_or(SimError::InvalidHandle("buffer (virtual)"))?;
            let range = storage
                .get(word_offset..word_offset + words)
                .ok_or(SimError::OutOfRange { what: "checksum" })?;
            checksum_words(range)
        };
        st.host_now_ns = st.host_now_ns.max(end);
        let ev = self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "checksum",
            || vec![("bytes", 8u64.into())],
            CommandKind::Read,
            deps,
            vec![BufferRange {
                buffer: buf,
                lo: word_offset,
                hi: word_offset + words,
            }],
            Vec::new(),
        );
        Ok((sum, ev))
    }

    /// Enqueues a kernel that reads `reads` buffers and updates `write`.
    ///
    /// The functional body `func` receives the read buffers as word slices
    /// and the write buffer mutably (it may also read it, enabling
    /// accumulation). Duration comes from `cost`; the device runs one kernel
    /// at a time.
    pub fn enqueue_kernel<F>(
        &self,
        queue: QueueId,
        cost: &KernelCost,
        reads: &[BufferId],
        write: BufferId,
        deps: &[EventId],
        func: F,
    ) -> Result<EventId, SimError>
    where
        F: FnOnce(&[&[u32]], &mut [u32]),
    {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Kernel, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.compute_free_ns)
            .max(dep_end);

        let (kt, prof) = self.kernel_cost_time(&st, cost)?;
        let end = start + st.cost_scale.kernel_ns(kt.total_ns.ceil() as u64) + effect.stall_ns();
        st.compute_free_ns = end;

        // Functional execution: temporarily move the write buffer out so the
        // read borrows and the mutable borrow cannot alias.
        for r in reads {
            if *r == write {
                return Err(SimError::InvalidHandle("buffer (aliases kernel output)"));
            }
        }
        let mut wbuf = match st.buffers.get_mut(write.0).and_then(|s| s.take()) {
            Some(b) => b,
            None => return Err(SimError::InvalidHandle("buffer")),
        };
        if wbuf.words.is_none() {
            st.buffers[write.0] = Some(wbuf);
            return Err(SimError::InvalidHandle("buffer (virtual)"));
        }
        {
            let mut read_slices: Vec<&[u32]> = Vec::with_capacity(reads.len());
            for r in reads {
                match st
                    .buffers
                    .get(r.0)
                    .and_then(|s| s.as_ref())
                    .and_then(|b| b.words.as_deref())
                {
                    Some(w) => read_slices.push(w),
                    None => {
                        // Restore before erroring.
                        st.buffers[write.0] = Some(wbuf);
                        return Err(SimError::InvalidHandle("buffer"));
                    }
                }
            }
            func(&read_slices, wbuf.words.as_mut().expect("checked above"));
        }
        st.buffers[write.0] = Some(wbuf);
        let buf_range = |st: &State, id: BufferId| BufferRange {
            buffer: id,
            lo: 0,
            hi: st.buffers[id.0].as_ref().map_or(0, |b| b.len_words),
        };
        let read_ranges: Vec<BufferRange> = reads.iter().map(|&r| buf_range(&st, r)).collect();
        let write_range = buf_range(&st, write);
        let ev = self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "kernel",
            "kernel",
            Vec::new,
            CommandKind::Kernel,
            deps,
            read_ranges,
            vec![write_range],
        );
        st.kernel_profiles.push((ev.0, prof));
        Ok(ev)
    }

    /// Enqueues a *timing-only* host↔device transfer of `bytes` (either
    /// direction): occupies the link and yields an event, but moves no data.
    /// Pairs with virtual buffers for database-scale timing runs.
    pub fn enqueue_virtual_transfer(
        &self,
        queue: QueueId,
        bytes: u64,
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Write, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let end = start
            + st.cost_scale
                .transfer_ns(self.spec.transfer.transfer_ns(bytes))
            + effect.stall_ns();
        st.link_free_ns = end;
        Ok(self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "transfer",
            || vec![("bytes", bytes.into())],
            CommandKind::UntaggedTransfer,
            deps,
            Vec::new(),
            Vec::new(),
        ))
    }

    /// Enqueues a *timing-only* host→device write of `words` words into the
    /// virtual buffer `buf` at `word_offset`: identical timing to
    /// [`enqueue_virtual_transfer`](Self::enqueue_virtual_transfer) with
    /// `bytes = words * 4`, but tagged with the buffer range it logically
    /// writes so the command log stays analyzable.
    pub fn enqueue_virtual_write(
        &self,
        queue: QueueId,
        buf: BufferId,
        word_offset: usize,
        words: usize,
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        Self::check_virtual_range(&st, buf, word_offset, words)?;
        let effect = Self::consult_faults(&mut st, FaultOp::Write, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let bytes = words as u64 * 4;
        let end = start
            + st.cost_scale
                .transfer_ns(self.spec.transfer.transfer_ns(bytes))
            + effect.stall_ns();
        st.link_free_ns = end;
        Ok(self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "write",
            || vec![("bytes", bytes.into())],
            CommandKind::Write,
            deps,
            Vec::new(),
            vec![BufferRange {
                buffer: buf,
                lo: word_offset,
                hi: word_offset + words,
            }],
        ))
    }

    /// Enqueues a *timing-only* device→host read of `words` words from the
    /// virtual buffer `buf` at `word_offset` — the tagged counterpart of
    /// [`enqueue_virtual_write`](Self::enqueue_virtual_write).
    pub fn enqueue_virtual_read(
        &self,
        queue: QueueId,
        buf: BufferId,
        word_offset: usize,
        words: usize,
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        Self::check_virtual_range(&st, buf, word_offset, words)?;
        let effect = Self::consult_faults(&mut st, FaultOp::Read, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.link_free_ns)
            .max(dep_end);
        let bytes = words as u64 * 4;
        let end = start
            + st.cost_scale
                .transfer_ns(self.spec.transfer.transfer_ns(bytes))
            + effect.stall_ns();
        st.link_free_ns = end;
        Ok(self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "transfer",
            "read",
            || vec![("bytes", bytes.into())],
            CommandKind::Read,
            deps,
            vec![BufferRange {
                buffer: buf,
                lo: word_offset,
                hi: word_offset + words,
            }],
            Vec::new(),
        ))
    }

    fn check_virtual_range(
        st: &State,
        buf: BufferId,
        word_offset: usize,
        words: usize,
    ) -> Result<(), SimError> {
        let slot = st
            .buffers
            .get(buf.0)
            .and_then(|s| s.as_ref())
            .ok_or(SimError::InvalidHandle("buffer"))?;
        if word_offset + words > slot.len_words {
            return Err(SimError::OutOfRange {
                what: "virtual transfer",
            });
        }
        Ok(())
    }

    /// Enqueues a *timing-only* kernel: occupies the compute engine per
    /// `cost` but executes no functional body.
    pub fn enqueue_kernel_timed(
        &self,
        queue: QueueId,
        cost: &KernelCost,
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Kernel, false)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.compute_free_ns)
            .max(dep_end);
        let (kt, prof) = self.kernel_cost_time(&st, cost)?;
        let end = start + st.cost_scale.kernel_ns(kt.total_ns.ceil() as u64) + effect.stall_ns();
        st.compute_free_ns = end;
        let ev = self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "kernel",
            "kernel",
            Vec::new,
            CommandKind::Kernel,
            deps,
            Vec::new(),
            Vec::new(),
        );
        st.kernel_profiles.push((ev.0, prof));
        Ok(ev)
    }

    /// Enqueues a *timing-only* kernel tagged with the buffers it logically
    /// reads and writes, so the command log can be race-checked. Timing is
    /// identical to [`enqueue_kernel_timed`](Self::enqueue_kernel_timed);
    /// the buffers (typically virtual) are not touched.
    pub fn enqueue_kernel_timed_on(
        &self,
        queue: QueueId,
        cost: &KernelCost,
        reads: &[BufferId],
        write: BufferId,
        deps: &[EventId],
    ) -> Result<EventId, SimError> {
        let mut st = self.state.borrow_mut();
        if queue.0 >= st.queues.len() {
            return Err(SimError::InvalidHandle("queue"));
        }
        let effect = Self::consult_faults(&mut st, FaultOp::Kernel, false)?;
        for r in reads {
            if *r == write {
                return Err(SimError::InvalidHandle("buffer (aliases kernel output)"));
            }
        }
        let buf_range = |st: &State, id: BufferId| -> Result<BufferRange, SimError> {
            let slot = st
                .buffers
                .get(id.0)
                .and_then(|s| s.as_ref())
                .ok_or(SimError::InvalidHandle("buffer"))?;
            Ok(BufferRange {
                buffer: id,
                lo: 0,
                hi: slot.len_words,
            })
        };
        let mut read_ranges = Vec::with_capacity(reads.len());
        for r in reads {
            read_ranges.push(buf_range(&st, *r)?);
        }
        let write_range = buf_range(&st, write)?;
        let dep_end = Self::resolve_deps(&st, deps)?;
        let queued = st.host_now_ns;
        let start = queued
            .max(st.queues[queue.0].last_end_ns)
            .max(st.compute_free_ns)
            .max(dep_end);
        let (kt, prof) = self.kernel_cost_time(&st, cost)?;
        let end = start + st.cost_scale.kernel_ns(kt.total_ns.ceil() as u64) + effect.stall_ns();
        st.compute_free_ns = end;
        let ev = self.record_event(
            &mut st,
            queue,
            start,
            end,
            queued,
            "kernel",
            "kernel",
            Vec::new,
            CommandKind::Kernel,
            deps,
            read_ranges,
            vec![write_range],
        );
        st.kernel_profiles.push((ev.0, prof));
        Ok(ev)
    }

    /// Blocks the host until every command on `queue` has finished
    /// (`clFinish`).
    pub fn finish(&self, queue: QueueId) -> Result<(), SimError> {
        let mut st = self.state.borrow_mut();
        let q = st
            .queues
            .get(queue.0)
            .ok_or(SimError::InvalidHandle("queue"))?;
        let end = q.last_end_ns;
        st.host_now_ns = st.host_now_ns.max(end);
        Ok(())
    }

    /// Blocks the host until every queue is drained.
    pub fn finish_all(&self) {
        let mut st = self.state.borrow_mut();
        let end = st.queues.iter().map(|q| q.last_end_ns).max().unwrap_or(0);
        st.host_now_ns = st.host_now_ns.max(end);
    }

    /// Profiling timestamps of an event. Marks the event as *consumed* in
    /// the command log, so static analysis can tell a profiled-but-unwaited
    /// event apart from one that is simply dead.
    pub fn event_profile(&self, ev: EventId) -> Result<EventProfile, SimError> {
        let mut st = self.state.borrow_mut();
        let profile = st
            .events
            .get(ev.0)
            .map(|e| e.profile)
            .ok_or(SimError::InvalidHandle("event"))?;
        st.profiled[ev.0] = true;
        Ok(profile)
    }

    /// Hardware-counter profile of a kernel launch event, or `None` for
    /// transfer events (and unknown handles). Unlike
    /// [`event_profile`](Self::event_profile) this does not mark the event
    /// as consumed — profiling is observation, not synchronization.
    pub fn kernel_profile(&self, ev: EventId) -> Option<KernelProfile> {
        let st = self.state.borrow();
        st.kernel_profiles
            .binary_search_by_key(&ev.0, |(idx, _)| *idx)
            .ok()
            .map(|i| st.kernel_profiles[i].1.clone())
    }

    /// Profiles of every kernel launched so far, in enqueue order, each
    /// paired with the launch's event.
    pub fn kernel_profiles(&self) -> Vec<(EventId, KernelProfile)> {
        self.state
            .borrow()
            .kernel_profiles
            .iter()
            .map(|(idx, p)| (EventId(*idx), p.clone()))
            .collect()
    }

    /// Snapshot of the full command log accumulated so far: one record per
    /// enqueued command, in enqueue order (record `i` created `EventId(i)`).
    pub fn command_log(&self) -> CommandLog {
        let st = self.state.borrow();
        CommandLog {
            commands: st.log.clone(),
            queue_count: st.queues.len(),
            profiled: st.profiled.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;

    fn small_gpu() -> Gpu {
        Gpu::new(devices::gtx_980())
    }

    #[test]
    fn init_cost_charged_on_open() {
        let g = small_gpu();
        assert_eq!(g.now_ns(), g.spec().transfer.runtime_init_ns);
    }

    #[test]
    fn buffer_limits_enforced() {
        let g = small_gpu();
        let limit = g.spec().max_alloc_bytes;
        let too_big = (limit / 4 + 1) as usize;
        assert!(matches!(
            g.create_buffer(too_big),
            Err(SimError::AllocTooLarge { .. })
        ));
        // Fill global memory with max-size allocations until it runs out.
        let chunk = (limit / 4) as usize;
        let mut ids = Vec::new();
        loop {
            match g.create_buffer(chunk) {
                Ok(id) => ids.push(id),
                Err(SimError::OutOfDeviceMemory { .. }) => break,
                Err(e) => panic!("unexpected {e}"),
            }
            assert!(ids.len() < 100, "global memory should be finite");
        }
        // Releasing returns capacity.
        g.release_buffer(ids[0]).unwrap();
        assert!(g.create_buffer(chunk).is_ok());
    }

    #[test]
    fn write_read_roundtrip() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(16).unwrap();
        let data: Vec<u32> = (0..8).map(|i| i * 3 + 1).collect();
        let _ = g.enqueue_write(q, b, 4, &data, &[]).unwrap();
        let mut out = vec![0u32; 8];
        let _ = g.enqueue_read(q, b, 4, &mut out, &[], true).unwrap();
        assert_eq!(out, data);
        // Unwritten region stays zero.
        let mut head = vec![1u32; 4];
        let _ = g.enqueue_read(q, b, 0, &mut head, &[], true).unwrap();
        assert_eq!(head, vec![0; 4]);
    }

    #[test]
    fn out_of_range_transfer_rejected() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(4).unwrap();
        let err = g.enqueue_write(q, b, 2, &[0u32; 4], &[]).unwrap_err();
        assert!(matches!(err, SimError::OutOfRange { .. }));
    }

    #[test]
    fn in_order_queue_serializes_commands() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(1024).unwrap();
        let data = vec![0u32; 1024];
        let e1 = g.enqueue_write(q, b, 0, &data, &[]).unwrap();
        let e2 = g.enqueue_write(q, b, 0, &data, &[]).unwrap();
        let p1 = g.event_profile(e1).unwrap();
        let p2 = g.event_profile(e2).unwrap();
        assert!(p2.start_ns >= p1.end_ns, "in-order queue must serialize");
        assert!(p1.duration_ns() >= g.spec().transfer.transfer_latency_ns);
    }

    #[test]
    fn kernel_runs_functionally_and_costs_time() {
        let g = small_gpu();
        let q = g.create_queue();
        let a = g.create_buffer(8).unwrap();
        let c = g.create_buffer(8).unwrap();
        let _ = g
            .enqueue_write(q, a, 0, &[1, 2, 3, 4, 5, 6, 7, 8], &[])
            .unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 1000.0,
            active_cores: 4,
            traffic: Traffic::default(),
        };
        let ev = g
            .enqueue_kernel(q, &cost, &[a], c, &[], |reads, out| {
                for (i, o) in out.iter_mut().enumerate() {
                    *o = reads[0][i] * 10;
                }
            })
            .unwrap();
        let mut out = vec![0u32; 8];
        let _ = g.enqueue_read(q, c, 0, &mut out, &[], true).unwrap();
        assert_eq!(out, vec![10, 20, 30, 40, 50, 60, 70, 80]);
        let p = g.event_profile(ev).unwrap();
        // 1000 cycles at 1.367 GHz ≈ 732 ns, inflated by the 4-core scaling
        // efficiency, plus launch overhead.
        let expect = kernel_time(g.spec(), 1000.0, 4, Traffic::default()).total_ns;
        assert!(
            (p.duration_ns() as f64 - expect).abs() < 2.0,
            "got {}",
            p.duration_ns()
        );
    }

    #[test]
    fn aliasing_kernel_output_rejected() {
        let g = small_gpu();
        let q = g.create_queue();
        let a = g.create_buffer(4).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 1.0,
            active_cores: 1,
            traffic: Traffic::default(),
        };
        let err = g
            .enqueue_kernel(q, &cost, &[a], a, &[], |_, _| {})
            .unwrap_err();
        assert!(matches!(err, SimError::InvalidHandle(_)));
    }

    #[test]
    fn two_queues_overlap_transfer_and_compute() {
        // The double-buffering mechanism: a kernel on the compute queue and
        // a transfer on the copy queue may overlap; two transfers may not.
        let g = small_gpu();
        let qt = g.create_queue();
        let qc = g.create_queue();
        let a = g.create_buffer(1 << 20).unwrap();
        let b = g.create_buffer(1 << 20).unwrap();
        let c = g.create_buffer(4).unwrap();
        let big = vec![0u32; 1 << 20];
        let e_w1 = g.enqueue_write(qt, a, 0, &big, &[]).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 10_000_000.0,
            active_cores: 16,
            traffic: Traffic::default(),
        };
        let e_k = g
            .enqueue_kernel(qc, &cost, &[a], c, &[e_w1], |_, _| {})
            .unwrap();
        let e_w2 = g.enqueue_write(qt, b, 0, &big, &[]).unwrap();
        let pk = g.event_profile(e_k).unwrap();
        let pw2 = g.event_profile(e_w2).unwrap();
        // The second transfer starts while the kernel is still running.
        assert!(pw2.start_ns < pk.end_ns, "transfer must overlap compute");
        // And the kernel started only after its dependency.
        assert!(pk.start_ns >= g.event_profile(e_w1).unwrap().end_ns);
    }

    #[test]
    fn kernels_serialize_on_the_compute_engine() {
        let g = small_gpu();
        let q1 = g.create_queue();
        let q2 = g.create_queue();
        let c1 = g.create_buffer(4).unwrap();
        let c2 = g.create_buffer(4).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 1_000_000.0,
            active_cores: 16,
            traffic: Traffic::default(),
        };
        let e1 = g
            .enqueue_kernel(q1, &cost, &[], c1, &[], |_, _| {})
            .unwrap();
        let e2 = g
            .enqueue_kernel(q2, &cost, &[], c2, &[], |_, _| {})
            .unwrap();
        let p1 = g.event_profile(e1).unwrap();
        let p2 = g.event_profile(e2).unwrap();
        assert!(p2.start_ns >= p1.end_ns, "one kernel at a time");
    }

    #[test]
    fn finish_advances_host_clock() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(1 << 20).unwrap();
        let data = vec![0u32; 1 << 20];
        let ev = g.enqueue_write(q, b, 0, &data, &[]).unwrap();
        let before = g.now_ns();
        let end = g.event_profile(ev).unwrap().end_ns;
        assert!(before < end, "enqueue must not block the host");
        g.finish(q).unwrap();
        assert_eq!(g.now_ns(), end);
    }

    #[test]
    fn detailed_cost_kernels_run_the_engine() {
        let g = small_gpu();
        let q = g.create_queue();
        let c = g.create_buffer(4).unwrap();
        let program = Program::dependent_chain(snp_gpu_model::InstrClass::Popc, 8, 50);
        let cost = KernelCost::Detailed {
            program,
            groups_per_core: 1,
            active_cores: 1,
            traffic: Traffic::default(),
        };
        let ev = g.enqueue_kernel(q, &cost, &[], c, &[], |_, _| {}).unwrap();
        let p = g.event_profile(ev).unwrap();
        // Chain of 400 popc at ~6 cycles each at 1.367 GHz ≈ 1.76 us + launch.
        let dur = p.duration_ns() as f64;
        assert!(
            dur > 1_500.0 + 8_000.0 && dur < 3_000.0 + 8_500.0,
            "got {dur}"
        );
    }

    #[test]
    fn tracer_records_command_spans_with_profile_timestamps() {
        let g = Gpu::with_tracer(devices::gtx_980(), Tracer::enabled());
        let q = g.create_queue_labeled("transfer");
        let b = g.create_buffer(256).unwrap();
        let data = vec![7u32; 256];
        g.host_pack(1024);
        let ev = g.enqueue_write(q, b, 0, &data, &[]).unwrap();
        let p = g.event_profile(ev).unwrap();
        let trace = g.tracer().snapshot().unwrap();

        let open = trace
            .events_in_cat("init")
            .next()
            .expect("device-open span");
        assert_eq!(open.end_ns, g.spec().transfer.runtime_init_ns);

        let pack = trace.events_in_cat("pack").next().expect("pack span");
        assert_eq!(pack.args, vec![("bytes", ArgValue::U64(1024))]);

        let write = trace.events_in_cat("transfer").next().expect("write span");
        assert_eq!((write.start_ns, write.end_ns), (p.start_ns, p.end_ns));
        assert!(write
            .args
            .contains(&(("queued_ns"), ArgValue::U64(p.queued_ns))));
        assert_eq!(trace.track(write.track).name, "queue 0 (transfer)");
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(8).unwrap();
        let _ = g.enqueue_write(q, b, 0, &[1u32; 8], &[]).unwrap();
        g.host_pack(4096);
        assert!(g.tracer().snapshot().is_none());
    }

    #[test]
    fn host_pack_charges_pack_rate() {
        let g = small_gpu();
        let t0 = g.now_ns();
        g.host_pack(1 << 30);
        let dt = g.now_ns() - t0;
        // 1 GiB at 8 GiB/s = 125 ms.
        assert!((dt as f64 - 0.125e9).abs() < 1e6, "got {dt}");
    }

    #[test]
    fn command_log_records_every_command_in_enqueue_order() {
        let g = small_gpu();
        let q = g.create_queue();
        let a = g.create_buffer(8).unwrap();
        let c = g.create_buffer(8).unwrap();
        let ev_w = g.enqueue_write(q, a, 2, &[1, 2, 3], &[]).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 100.0,
            active_cores: 1,
            traffic: Traffic::default(),
        };
        let ev_k = g
            .enqueue_kernel(q, &cost, &[a], c, &[ev_w], |_, _| {})
            .unwrap();
        let mut out = vec![0u32; 8];
        let ev_r = g.enqueue_read(q, c, 0, &mut out, &[ev_k], true).unwrap();

        let log = g.command_log();
        assert_eq!(log.commands.len(), 3);
        assert_eq!(log.queue_count, 1);
        // Record position == event index.
        for (i, rec) in log.commands.iter().enumerate() {
            assert_eq!(rec.event.index(), i);
        }
        let w = &log.commands[ev_w.index()];
        assert_eq!(w.kind, CommandKind::Write);
        assert_eq!(
            w.writes,
            vec![BufferRange {
                buffer: a,
                lo: 2,
                hi: 5
            }]
        );
        assert!(w.reads.is_empty() && w.deps.is_empty());
        let k = &log.commands[ev_k.index()];
        assert_eq!(k.kind, CommandKind::Kernel);
        assert_eq!(k.deps, vec![ev_w]);
        assert_eq!(
            k.reads,
            vec![BufferRange {
                buffer: a,
                lo: 0,
                hi: 8
            }]
        );
        assert_eq!(
            k.writes,
            vec![BufferRange {
                buffer: c,
                lo: 0,
                hi: 8
            }]
        );
        let r = &log.commands[ev_r.index()];
        assert_eq!(r.kind, CommandKind::Read);
        assert_eq!(
            r.reads,
            vec![BufferRange {
                buffer: c,
                lo: 0,
                hi: 8
            }]
        );
        // Nothing profiled yet; profiling marks the event consumed.
        assert!(!log.profiled[ev_k.index()]);
        let _ = g.event_profile(ev_k).unwrap();
        assert!(g.command_log().profiled[ev_k.index()]);
    }

    #[test]
    fn tagged_virtual_commands_match_untagged_timing() {
        let tagged = small_gpu();
        let untagged = small_gpu();
        let words = 1usize << 16;

        let qt = tagged.create_queue();
        let b = tagged.create_virtual_buffer(words).unwrap();
        let c = tagged.create_virtual_buffer(words).unwrap();
        let e1 = tagged.enqueue_virtual_write(qt, b, 0, words, &[]).unwrap();
        let cost = KernelCost::Analytic {
            core_cycles: 50_000.0,
            active_cores: 16,
            traffic: Traffic::default(),
        };
        let e2 = tagged
            .enqueue_kernel_timed_on(qt, &cost, &[b], c, &[e1])
            .unwrap();
        let e3 = tagged.enqueue_virtual_read(qt, c, 0, words, &[e2]).unwrap();

        let qu = untagged.create_queue();
        let u1 = untagged
            .enqueue_virtual_transfer(qu, words as u64 * 4, &[])
            .unwrap();
        let u2 = untagged.enqueue_kernel_timed(qu, &cost, &[u1]).unwrap();
        let u3 = untagged
            .enqueue_virtual_transfer(qu, words as u64 * 4, &[u2])
            .unwrap();

        for (t, u) in [(e1, u1), (e2, u2), (e3, u3)] {
            let pt = tagged.event_profile(t).unwrap();
            let pu = untagged.event_profile(u).unwrap();
            assert_eq!(pt.start_ns, pu.start_ns);
            assert_eq!(pt.end_ns, pu.end_ns);
        }

        // The tagged stream carries buffer sets; the untagged one does not.
        let log = tagged.command_log();
        assert_eq!(log.commands[e2.index()].reads.len(), 1);
        assert_eq!(log.commands[e2.index()].writes.len(), 1);
        let ulog = untagged.command_log();
        assert_eq!(ulog.commands[u2.index()].kind, CommandKind::Kernel);
        assert!(ulog.commands[u2.index()].reads.is_empty());
    }

    #[test]
    fn tagged_virtual_commands_validate_handles_and_ranges() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_virtual_buffer(16).unwrap();
        assert!(matches!(
            g.enqueue_virtual_write(q, b, 8, 16, &[]),
            Err(SimError::OutOfRange { .. })
        ));
        assert!(matches!(
            g.enqueue_virtual_read(q, BufferId(99), 0, 1, &[]),
            Err(SimError::InvalidHandle(_))
        ));
        let cost = KernelCost::Analytic {
            core_cycles: 1.0,
            active_cores: 1,
            traffic: Traffic::default(),
        };
        assert!(matches!(
            g.enqueue_kernel_timed_on(q, &cost, &[b], b, &[]),
            Err(SimError::InvalidHandle(_))
        ));
    }

    #[test]
    fn buffer_range_overlap_semantics() {
        let b0 = BufferId(0);
        let b1 = BufferId(1);
        let r = |buffer, lo, hi| BufferRange { buffer, lo, hi };
        assert!(r(b0, 0, 8).overlaps(&r(b0, 4, 12)));
        assert!(!r(b0, 0, 8).overlaps(&r(b0, 8, 16)), "half-open ranges");
        assert!(!r(b0, 0, 8).overlaps(&r(b1, 0, 8)), "distinct buffers");
    }

    #[test]
    fn injected_timeout_surfaces_as_typed_fault_with_source() {
        use snp_faults::{FaultKind, FaultPlan};
        let g = small_gpu();
        g.set_fault_plan(FaultPlan::quiet().inject_at(0, FaultKind::TransferTimeout));
        let q = g.create_queue();
        let b = g.create_buffer(8).unwrap();
        let err = g.enqueue_write(q, b, 0, &[1, 2, 3, 4], &[]).unwrap_err();
        let fault = match &err {
            SimError::DeviceFault(f) => *f,
            other => panic!("expected DeviceFault, got {other:?}"),
        };
        assert_eq!(fault.kind, FaultKind::TransferTimeout);
        // source() chains down to the DeviceFault.
        let src = std::error::Error::source(&err).expect("source");
        assert!(src.to_string().contains("transfer_timeout"));
        assert_eq!(g.fault_stats().transfer_timeouts, 1);
        // The retry succeeds (one-shot explicit injection) and the failed
        // command never entered the log.
        let _ = g.enqueue_write(q, b, 0, &[1, 2, 3, 4], &[]).unwrap();
        assert_eq!(g.command_log().commands.len(), 1);
    }

    #[test]
    fn injected_corruption_flips_one_bit_and_checksum_catches_it() {
        use snp_faults::{checksum_words, FaultKind, FaultPlan};
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(64).unwrap();
        let data: Vec<u32> = (0..64).map(|i| i * 77 + 5).collect();
        let w = g.enqueue_write(q, b, 0, &data, &[]).unwrap();
        // Corrupt the next functional readback (command index 1 of the plan
        // armed *after* the write).
        g.set_fault_plan(FaultPlan::quiet().inject_at(0, FaultKind::ReadCorruption));
        let mut out = vec![0u32; 64];
        let _ = g.enqueue_read(q, b, 0, &mut out, &[w], true).unwrap();
        assert_ne!(out, data, "a bit must have flipped");
        let diff: u32 = out
            .iter()
            .zip(&data)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flips");
        // The device-side checksum sees the uncorrupted buffer, so it
        // disagrees with the host copy — detection works.
        let (device_sum, _ev) = g.enqueue_checksum_read(q, b, 0, 64, &[]).unwrap();
        assert_eq!(device_sum, checksum_words(&data));
        assert_ne!(device_sum, checksum_words(&out));
        // A clean re-read matches the checksum again.
        let mut again = vec![0u32; 64];
        let _ = g.enqueue_read(q, b, 0, &mut again, &[], true).unwrap();
        assert_eq!(checksum_words(&again), device_sum);
    }

    #[test]
    fn injected_stall_extends_command_duration() {
        use snp_faults::{FaultKind, FaultPlan, FaultProfile};
        let clean = small_gpu();
        let q0 = clean.create_queue();
        let b0 = clean.create_buffer(1024).unwrap();
        let e0 = clean.enqueue_write(q0, b0, 0, &[0u32; 1024], &[]).unwrap();
        let base = clean.event_profile(e0).unwrap().duration_ns();

        let g = small_gpu();
        g.set_fault_plan(
            FaultPlan::new(
                3,
                FaultProfile {
                    stall_ns: 123_456,
                    ..FaultProfile::none()
                },
            )
            .inject_at(0, FaultKind::QueueStall),
        );
        let q = g.create_queue();
        let b = g.create_buffer(1024).unwrap();
        let ev = g.enqueue_write(q, b, 0, &[0u32; 1024], &[]).unwrap();
        let stalled = g.event_profile(ev).unwrap().duration_ns();
        assert_eq!(stalled, base + 123_456);
        assert_eq!(g.fault_stats().queue_stalls, 1);
    }

    #[test]
    fn device_loss_fails_every_subsequent_command() {
        use snp_faults::{FaultKind, FaultPlan, FaultProfile};
        let g = small_gpu();
        g.set_fault_plan(FaultPlan::new(
            0,
            FaultProfile {
                device_loss_at: Some(2),
                ..FaultProfile::none()
            },
        ));
        let q = g.create_queue();
        let b = g.create_buffer(8).unwrap();
        let _ = g.enqueue_write(q, b, 0, &[1], &[]).unwrap();
        let _ = g.enqueue_write(q, b, 1, &[2], &[]).unwrap();
        for _ in 0..3 {
            let err = g.enqueue_write(q, b, 2, &[3], &[]).unwrap_err();
            match err {
                SimError::DeviceFault(f) => assert_eq!(f.kind, FaultKind::DeviceLoss),
                other => panic!("expected loss, got {other:?}"),
            }
        }
        assert!(g.device_lost());
        assert_eq!(g.fault_stats().device_losses, 1);
        // Reads fail too; the buffer contents written before the loss are
        // still reachable only through recovery (CPU fallback), not here.
        let mut out = [0u32; 1];
        assert!(g.enqueue_read(q, b, 0, &mut out, &[], true).is_err());
    }

    #[test]
    fn checksum_read_is_timed_and_logged() {
        let g = small_gpu();
        let q = g.create_queue();
        let b = g.create_buffer(16).unwrap();
        let w = g.enqueue_write(q, b, 0, &[7u32; 16], &[]).unwrap();
        let before = g.now_ns();
        let (sum, ev) = g.enqueue_checksum_read(q, b, 0, 16, &[w]).unwrap();
        assert_eq!(sum, snp_faults::checksum_words(&[7u32; 16]));
        assert!(g.now_ns() > before, "blocking checksum advances the host");
        let p = g.event_profile(ev).unwrap();
        assert!(p.duration_ns() >= g.spec().transfer.transfer_latency_ns);
        let log = g.command_log();
        let rec = log.commands.last().unwrap();
        assert_eq!(rec.kind, CommandKind::Read);
        assert_eq!(rec.reads.len(), 1);
        // Virtual buffers have nothing to sum.
        let v = g.create_virtual_buffer(16).unwrap();
        assert!(g.enqueue_checksum_read(q, v, 0, 16, &[]).is_err());
    }

    #[test]
    fn cost_scale_rescales_kernel_and_transfer_durations() {
        let durations = |scale: Option<CostScale>| {
            let g = small_gpu();
            if let Some(s) = scale {
                g.set_cost_scale(s);
            }
            let q = g.create_queue();
            let b = g.create_buffer(1024).unwrap();
            let w = g.enqueue_write(q, b, 0, &[0u32; 1024], &[]).unwrap();
            let cost = KernelCost::Analytic {
                core_cycles: 1_000_000.0,
                active_cores: 4,
                traffic: Traffic::default(),
            };
            let k = g.enqueue_kernel(q, &cost, &[], b, &[w], |_, _| {}).unwrap();
            g.finish_all();
            (
                g.event_profile(w).unwrap().duration_ns(),
                g.event_profile(k).unwrap().duration_ns(),
            )
        };
        let (w1, k1) = durations(None);
        let (w2, k2) = durations(Some(CostScale {
            kernel: 0.5,
            transfer: 2.0,
        }));
        assert_eq!(w2, 2 * w1, "transfer doubled");
        assert_eq!(k2, ((k1 as f64) * 0.5).round() as u64, "kernel halved");
        // The identity scale is bit-exact with no scale at all.
        assert_eq!(durations(Some(CostScale::default())), (w1, k1));
        assert!(CostScale::default().is_identity());
    }
}
