//! The timing ISA of the simulated model GPU.
//!
//! The detailed engine does not interpret data — functional results are
//! computed by the (much faster) host-side executors and validated against
//! the scalar reference. What the engine needs is exactly what determines
//! *time* on the paper's model architecture: each instruction's class (which
//! pipeline it issues to), its register dependencies (what it must wait
//! for), and, for shared-memory accesses, how many bank-conflict ways it
//! serializes over.
//!
//! Programs are loop nests flattened to a sequence of [`Block`]s, each a
//! straight-line body executed `trips` times — sufficient for both the §V-C
//! microbenchmark kernels (one dependent-chain block wrapped in a loop) and
//! the SNP comparison kernel (prologue / k-loop body / epilogue).

use snp_gpu_model::InstrClass;

/// A virtual register index, private to each thread group.
pub type Reg = u16;

/// One thread-group instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instr {
    /// Pipeline class.
    pub class: InstrClass,
    /// Destination register (None for stores).
    pub dst: Option<Reg>,
    /// Source registers this instruction must wait on.
    pub srcs: Vec<Reg>,
    /// For `LoadShared`/`StoreShared`: the number of conflict ways the
    /// access serializes over (1 = conflict-free). Ignored otherwise.
    pub conflict_ways: u32,
}

impl Instr {
    /// A conflict-free instruction.
    pub fn new(class: InstrClass, dst: Option<Reg>, srcs: Vec<Reg>) -> Self {
        Instr {
            class,
            dst,
            srcs,
            conflict_ways: 1,
        }
    }

    /// Arithmetic op `dst <- f(srcs)`.
    pub fn arith(class: InstrClass, dst: Reg, srcs: &[Reg]) -> Self {
        assert!(!class.is_memory(), "{class} is not arithmetic");
        Self::new(class, Some(dst), srcs.to_vec())
    }

    /// Global load `dst <- mem[...]` (address registers in `srcs`).
    pub fn load_global(dst: Reg, srcs: &[Reg]) -> Self {
        Self::new(InstrClass::LoadGlobal, Some(dst), srcs.to_vec())
    }

    /// Shared load with an explicit conflict degree.
    pub fn load_shared(dst: Reg, srcs: &[Reg], conflict_ways: u32) -> Self {
        assert!(conflict_ways >= 1);
        let mut i = Self::new(InstrClass::LoadShared, Some(dst), srcs.to_vec());
        i.conflict_ways = conflict_ways;
        i
    }

    /// Global store of `srcs`.
    pub fn store_global(srcs: &[Reg]) -> Self {
        Self::new(InstrClass::StoreGlobal, None, srcs.to_vec())
    }

    /// Shared store of `srcs`.
    pub fn store_shared(srcs: &[Reg], conflict_ways: u32) -> Self {
        assert!(conflict_ways >= 1);
        let mut i = Self::new(InstrClass::StoreShared, None, srcs.to_vec());
        i.conflict_ways = conflict_ways;
        i
    }
}

/// A straight-line body executed `trips` times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Number of times the body runs.
    pub trips: u32,
    /// The body.
    pub instrs: Vec<Instr>,
}

impl Block {
    /// Single-trip block.
    pub fn once(instrs: Vec<Instr>) -> Self {
        Block { trips: 1, instrs }
    }

    /// Looped block.
    pub fn looped(trips: u32, instrs: Vec<Instr>) -> Self {
        Block { trips, instrs }
    }

    /// Dynamic instruction count of the block.
    pub fn dynamic_instrs(&self) -> u64 {
        self.trips as u64 * self.instrs.len() as u64
    }

    /// Whether the block executes at all: the engines skip zero-trip and
    /// empty blocks, and static analyses must do the same or they will
    /// count definitions that never happen.
    pub fn executes(&self) -> bool {
        self.trips > 0 && !self.instrs.is_empty()
    }
}

/// A program: blocks executed in order by every thread group.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    /// The block sequence.
    pub blocks: Vec<Block>,
}

impl Program {
    /// A program from blocks.
    pub fn new(blocks: Vec<Block>) -> Self {
        Program { blocks }
    }

    /// Dynamic instruction count per thread group.
    pub fn dynamic_instrs(&self) -> u64 {
        self.blocks.iter().map(Block::dynamic_instrs).sum()
    }

    /// Dynamic instruction count per thread group, broken down by pipeline
    /// class (classes in first-appearance order) — the "instructions issued
    /// per class" profiler counter.
    pub fn dynamic_instrs_by_class(&self) -> Vec<(InstrClass, u64)> {
        let mut counts: Vec<(InstrClass, u64)> = Vec::new();
        for block in &self.blocks {
            for instr in &block.instrs {
                match counts.iter_mut().find(|(c, _)| *c == instr.class) {
                    Some((_, n)) => *n += block.trips as u64,
                    None => counts.push((instr.class, block.trips as u64)),
                }
            }
        }
        counts
    }

    /// Highest register index used (for scoreboard sizing); `None` if the
    /// program touches no registers.
    pub fn max_reg(&self) -> Option<Reg> {
        self.blocks
            .iter()
            .flat_map(|b| b.instrs.iter())
            .flat_map(|i| i.dst.iter().chain(i.srcs.iter()))
            .copied()
            .max()
    }

    /// Number of registers the program requires: `max_reg + 1`, or zero for
    /// a register-free program. Scoreboards are sized with this, and device
    /// register *limits* must be compared against this count — comparing
    /// against the highest index ([`max_reg`](Self::max_reg)) is off by one
    /// and admits programs that need one register more than the device has.
    pub fn reg_count(&self) -> usize {
        self.max_reg().map_or(0, |r| r as usize + 1)
    }

    /// Iterates every static instruction of every *executing* block in
    /// program order, yielding `(block_index, instr_index, &Instr)`.
    /// Zero-trip and empty blocks are skipped, matching the engines'
    /// semantics — a definition inside a skipped block never happens.
    pub fn iter_instrs(&self) -> impl Iterator<Item = (usize, usize, &Instr)> {
        self.blocks
            .iter()
            .enumerate()
            .filter(|(_, b)| b.executes())
            .flat_map(|(bi, b)| b.instrs.iter().enumerate().map(move |(ii, i)| (bi, ii, i)))
    }

    /// Builds the §V-C dependent-chain microbenchmark: `iters` repetitions
    /// of `chain_len` back-to-back `class` instructions, each consuming the
    /// previous result (`temp = class(temp)`).
    pub fn dependent_chain(class: InstrClass, chain_len: usize, iters: u32) -> Program {
        assert!(chain_len >= 1);
        let body: Vec<Instr> = (0..chain_len)
            .map(|_| Instr::arith(class, 0, &[0]))
            .collect();
        Program::new(vec![
            Block::once(vec![Instr::load_global(0, &[])]), // temp = Array[thread_index]
            Block::looped(iters, body),
            Block::once(vec![Instr::store_global(&[0])]), // Array[thread_index] = temp
        ])
    }

    /// Builds the §V-D throughput microbenchmark: like the chain, but with
    /// `streams` independent chains interleaved so a single group alone can
    /// also expose issue throughput.
    pub fn independent_streams(class: InstrClass, streams: usize, iters: u32) -> Program {
        assert!((1..=16).contains(&streams));
        let init: Vec<Instr> = (0..streams)
            .map(|s| Instr::load_global(s as Reg, &[]))
            .collect();
        let body: Vec<Instr> = (0..streams)
            .map(|s| Instr::arith(class, s as Reg, &[s as Reg]))
            .collect();
        let fini: Vec<Instr> = (0..streams)
            .map(|s| Instr::store_global(&[s as Reg]))
            .collect();
        Program::new(vec![
            Block::once(init),
            Block::looped(iters, body),
            Block::once(fini),
        ])
    }

    /// Builds a mixed-class stream (the §V-D pipeline-sharing probe):
    /// alternating independent instructions of `a` and `b`.
    pub fn interleaved_pair(
        a: InstrClass,
        b: InstrClass,
        pairs_per_iter: usize,
        iters: u32,
    ) -> Program {
        assert!(pairs_per_iter >= 1);
        let mut body = Vec::with_capacity(pairs_per_iter * 2);
        for p in 0..pairs_per_iter {
            let ra = (2 * p) as Reg;
            let rb = (2 * p + 1) as Reg;
            body.push(Instr::arith(a, ra, &[ra]));
            body.push(Instr::arith(b, rb, &[rb]));
        }
        let regs = (pairs_per_iter * 2) as Reg;
        let init: Vec<Instr> = (0..regs).map(|r| Instr::load_global(r, &[])).collect();
        let fini: Vec<Instr> = (0..regs).map(|r| Instr::store_global(&[r])).collect();
        Program::new(vec![
            Block::once(init),
            Block::looped(iters, body),
            Block::once(fini),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependent_chain_shape() {
        let p = Program::dependent_chain(InstrClass::Popc, 8, 100);
        assert_eq!(p.blocks.len(), 3);
        assert_eq!(p.blocks[1].trips, 100);
        assert_eq!(p.blocks[1].instrs.len(), 8);
        assert_eq!(p.dynamic_instrs(), 1 + 800 + 1);
        // Every chain instruction depends on register 0 and writes it back.
        for i in &p.blocks[1].instrs {
            assert_eq!(i.dst, Some(0));
            assert_eq!(i.srcs, vec![0]);
        }
    }

    #[test]
    fn independent_streams_have_disjoint_registers() {
        let p = Program::independent_streams(InstrClass::IntAdd, 4, 10);
        let body = &p.blocks[1].instrs;
        let dsts: Vec<_> = body.iter().map(|i| i.dst.unwrap()).collect();
        assert_eq!(dsts, vec![0, 1, 2, 3]);
        assert_eq!(p.max_reg(), Some(3));
    }

    #[test]
    fn interleaved_pair_alternates_classes() {
        let p = Program::interleaved_pair(InstrClass::Popc, InstrClass::IntAdd, 3, 5);
        let body = &p.blocks[1].instrs;
        assert_eq!(body.len(), 6);
        assert_eq!(body[0].class, InstrClass::Popc);
        assert_eq!(body[1].class, InstrClass::IntAdd);
        assert_eq!(body[4].class, InstrClass::Popc);
    }

    #[test]
    fn conflict_ways_validated() {
        let i = Instr::load_shared(1, &[0], 4);
        assert_eq!(i.conflict_ways, 4);
        assert!(std::panic::catch_unwind(|| Instr::load_shared(1, &[0], 0)).is_err());
    }

    #[test]
    #[should_panic(expected = "not arithmetic")]
    fn arith_rejects_memory_class() {
        let _ = Instr::arith(InstrClass::LoadGlobal, 0, &[]);
    }

    #[test]
    fn empty_program() {
        let p = Program::default();
        assert_eq!(p.dynamic_instrs(), 0);
        assert_eq!(p.max_reg(), None);
        assert_eq!(p.reg_count(), 0);
    }

    #[test]
    fn reg_count_is_max_index_plus_one() {
        // Regression for the max_reg/count off-by-one: a program whose
        // highest register *index* equals a limit N uses N + 1 registers.
        let p = Program::independent_streams(InstrClass::IntAdd, 4, 1);
        assert_eq!(p.max_reg(), Some(3));
        assert_eq!(p.reg_count(), 4);
        let limit = 3usize; // a device with exactly 3 registers per thread
        assert!(p.max_reg().unwrap() as usize <= limit, "index check passes");
        assert!(p.reg_count() > limit, "the count check correctly rejects");
    }
}
