//! # snp-faults — deterministic fault injection for the simulated device
//!
//! The paper's host framework (§VI) assumes a healthy OpenCL device. A
//! production service cannot: transfers time out, readbacks arrive with
//! flipped bits, kernel launches fail, queues stall, and whole devices
//! disappear mid-stream. This crate defines the *fault taxonomy* and a
//! deterministic, seedable [`FaultPlan`] that the simulated `Gpu` consults
//! at every host command. Determinism matters: the same seed and profile
//! replay the same fault sequence against the same command stream, so every
//! chaos finding is reproducible and every recovery path is testable.
//!
//! Faults come in two flavours:
//!
//! * **Device faults** — injected by the simulator per host command and
//!   surfaced as a typed [`DeviceFault`] (wrapped in the host API's error
//!   enum) or, for corruption and stalls, as in-band misbehaviour the
//!   recovery layer must detect (checksums) or absorb (timing).
//! * **Engine faults** — seeded bugs in the *host orchestration* itself
//!   (today: dropping the B-upload dependency from kernel wait lists),
//!   consulted by the engine when it builds wait lists and caught by the
//!   `snp-verify` race detector.
//!
//! See DESIGN.md §10 for the recovery semantics built on top.

#![warn(missing_docs)]

use std::fmt;

/// The class of host command a fault decision applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Host→device transfer (functional or virtual).
    Write,
    /// Device→host transfer (functional or virtual, including checksum
    /// readbacks).
    Read,
    /// Kernel launch.
    Kernel,
}

impl FaultOp {
    /// Short lowercase name for messages.
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::Write => "write",
            FaultOp::Read => "read",
            FaultOp::Kernel => "kernel",
        }
    }
}

/// The fault taxonomy (DESIGN.md §10.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// A transfer exceeded its deadline and was aborted by the runtime.
    /// Transient: a retry of the command may succeed.
    TransferTimeout,
    /// A device→host readback delivered data with flipped bits (an
    /// ECC-escape / link corruption). Injected *silently* into the received
    /// words — detection is the recovery layer's job (per-chunk checksums).
    ReadCorruption,
    /// A kernel launch was rejected by the runtime. Transient.
    KernelLaunchFail,
    /// The queue hiccupped: the command completes correctly but holds its
    /// resource for an extra stall period. Absorbed, never an error.
    QueueStall,
    /// The device fell off the bus. Permanent: every later command on this
    /// device fails with the same fault.
    DeviceLoss,
}

impl FaultKind {
    /// All kinds, for reports and reconciliation loops.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::TransferTimeout,
        FaultKind::ReadCorruption,
        FaultKind::KernelLaunchFail,
        FaultKind::QueueStall,
        FaultKind::DeviceLoss,
    ];

    /// Stable snake_case name (used in reports and JSON).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TransferTimeout => "transfer_timeout",
            FaultKind::ReadCorruption => "read_corruption",
            FaultKind::KernelLaunchFail => "kernel_launch_fail",
            FaultKind::QueueStall => "queue_stall",
            FaultKind::DeviceLoss => "device_loss",
        }
    }

    /// Whether a bounded retry of the failed command is a sound response.
    pub fn is_transient(self) -> bool {
        matches!(
            self,
            FaultKind::TransferTimeout | FaultKind::KernelLaunchFail
        )
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A structured device fault: what was injected, where in the command
/// stream, and on which command class. This is the `source()` root of the
/// error chain the engine and CLI classify on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceFault {
    /// What went wrong.
    pub kind: FaultKind,
    /// The command class it hit.
    pub op: FaultOp,
    /// Zero-based index of the host command in this device's lifetime.
    pub command_index: u64,
}

impl fmt::Display for DeviceFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} on {} command #{}",
            self.kind,
            self.op.name(),
            self.command_index
        )
    }
}

impl std::error::Error for DeviceFault {}

/// How the simulator should misbehave on one command, as decided by
/// [`FaultPlan::next`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Injection {
    /// Fail the command with a typed fault (timeout / launch fail / loss).
    Fail(DeviceFault),
    /// Deliver the readback with a deterministically chosen bit flipped;
    /// `entropy` seeds the word/bit choice.
    CorruptBit {
        /// Deterministic entropy for choosing the flipped word and bit.
        entropy: u64,
    },
    /// Complete the command but occupy its resource `ns` longer.
    Stall {
        /// Extra nanoseconds of resource occupancy.
        ns: u64,
    },
}

/// Per-command fault probabilities plus scheduled faults — the declarative
/// half of a [`FaultPlan`]. Rates are per *eligible* command (timeouts hit
/// transfers, launch failures hit kernels, corruption hits functional
/// readbacks, stalls hit everything).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultProfile {
    /// Probability a transfer times out.
    pub transfer_timeout: f64,
    /// Probability a functional readback is delivered corrupted.
    pub read_corruption: f64,
    /// Probability a kernel launch fails.
    pub kernel_launch_fail: f64,
    /// Probability any command stalls its queue.
    pub queue_stall: f64,
    /// Stall duration in virtual nanoseconds.
    pub stall_ns: u64,
    /// Permanently lose the device at this host-command index.
    pub device_loss_at: Option<u64>,
    /// Engine-level seeded bug: drop the B-upload event from every kernel
    /// wait list (the missing-dependency hazard `snp-verify` exists to
    /// catch). Consulted by the engine, not the simulator.
    pub drop_kernel_b_dep: bool,
}

impl Default for FaultProfile {
    fn default() -> Self {
        FaultProfile {
            transfer_timeout: 0.0,
            read_corruption: 0.0,
            kernel_launch_fail: 0.0,
            queue_stall: 0.0,
            stall_ns: 50_000,
            device_loss_at: None,
            drop_kernel_b_dep: false,
        }
    }
}

impl FaultProfile {
    /// No faults at all (the baseline chaos cell).
    pub fn none() -> Self {
        Self::default()
    }

    /// Transient runtime flakiness: occasional transfer timeouts and kernel
    /// launch failures, recoverable by bounded retry.
    pub fn transient() -> Self {
        FaultProfile {
            transfer_timeout: 0.08,
            kernel_launch_fail: 0.08,
            ..Self::default()
        }
    }

    /// Readback bit corruption (ECC-escape), recoverable by checksum-verify
    /// and re-read.
    pub fn corruption() -> Self {
        FaultProfile {
            read_corruption: 0.15,
            ..Self::default()
        }
    }

    /// Queue stalls: commands complete correctly but late.
    pub fn stall() -> Self {
        FaultProfile {
            queue_stall: 0.25,
            stall_ns: 200_000,
            ..Self::default()
        }
    }

    /// Permanent device loss partway through the command stream, forcing
    /// checkpoint-resume on the CPU (or failover in multi-device runs).
    pub fn loss() -> Self {
        FaultProfile {
            device_loss_at: Some(9),
            ..Self::default()
        }
    }

    /// Everything at once: flaky transfers and launches, corrupt readbacks,
    /// stalls, and eventual device loss.
    pub fn mixed() -> Self {
        FaultProfile {
            transfer_timeout: 0.05,
            read_corruption: 0.08,
            kernel_launch_fail: 0.05,
            queue_stall: 0.10,
            stall_ns: 100_000,
            device_loss_at: Some(40),
            ..Self::default()
        }
    }

    /// Looks up a named chaos profile (`none`, `transient`, `corruption`,
    /// `stall`, `loss`, `mixed`).
    pub fn by_name(name: &str) -> Option<FaultProfile> {
        match name {
            "none" => Some(Self::none()),
            "transient" => Some(Self::transient()),
            "corruption" => Some(Self::corruption()),
            "stall" => Some(Self::stall()),
            "loss" => Some(Self::loss()),
            "mixed" => Some(Self::mixed()),
            _ => None,
        }
    }

    /// The chaos-matrix profile names, in report order.
    pub const NAMES: [&'static str; 6] =
        ["none", "transient", "corruption", "stall", "loss", "mixed"];
}

/// Counts of faults actually injected, by kind. The recovery layer's
/// counters must reconcile against these (tested property): every injected
/// fault is retried, absorbed, detected, or surfaced — never silent.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transfer timeouts injected.
    pub transfer_timeouts: u64,
    /// Corrupted readbacks delivered.
    pub read_corruptions: u64,
    /// Kernel launch failures injected.
    pub kernel_launch_fails: u64,
    /// Queue stalls injected.
    pub queue_stalls: u64,
    /// Whether the device was lost (at most once).
    pub device_losses: u64,
}

impl FaultStats {
    /// Count for one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        match kind {
            FaultKind::TransferTimeout => self.transfer_timeouts,
            FaultKind::ReadCorruption => self.read_corruptions,
            FaultKind::KernelLaunchFail => self.kernel_launch_fails,
            FaultKind::QueueStall => self.queue_stalls,
            FaultKind::DeviceLoss => self.device_losses,
        }
    }

    /// Total injected faults of every kind.
    pub fn total(&self) -> u64 {
        FaultKind::ALL.iter().map(|&k| self.count(k)).sum()
    }

    fn bump(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::TransferTimeout => self.transfer_timeouts += 1,
            FaultKind::ReadCorruption => self.read_corruptions += 1,
            FaultKind::KernelLaunchFail => self.kernel_launch_fails += 1,
            FaultKind::QueueStall => self.queue_stalls += 1,
            FaultKind::DeviceLoss => self.device_losses += 1,
        }
    }
}

/// A deterministic, seedable fault plan: a [`FaultProfile`] (rates and
/// scheduled loss), explicit per-command overrides, and the runtime cursor
/// and stats. Cloning yields an independent replay from the *current*
/// position; plans handed to a fresh device start at command zero.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    explicit: Vec<(u64, FaultKind)>,
    cursor: u64,
    lost: bool,
    stats: FaultStats,
}

/// SplitMix64 — tiny, high-quality, and stable across platforms; the same
/// generator the `rand` shim builds on.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan from a seed and a profile.
    pub fn new(seed: u64, profile: FaultProfile) -> FaultPlan {
        FaultPlan {
            seed,
            profile,
            explicit: Vec::new(),
            cursor: 0,
            lost: false,
            stats: FaultStats::default(),
        }
    }

    /// A plan that never injects anything (useful to exercise the recovery
    /// machinery's fault-free path).
    pub fn quiet() -> FaultPlan {
        FaultPlan::new(0, FaultProfile::none())
    }

    /// Schedules `kind` at exactly host-command index `at` (in addition to
    /// any rate-driven faults). Eligibility still applies: a corruption
    /// scheduled on a kernel command is ignored.
    pub fn inject_at(mut self, at: u64, kind: FaultKind) -> FaultPlan {
        self.explicit.push((at, kind));
        self
    }

    /// The declarative profile.
    pub fn profile(&self) -> &FaultProfile {
        &self.profile
    }

    /// Faults injected so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the device has been permanently lost.
    pub fn device_lost(&self) -> bool {
        self.lost
    }

    /// Host commands consulted so far.
    pub fn commands_seen(&self) -> u64 {
        self.cursor
    }

    /// A uniform draw in `[0, 1)` for (command, kind-lane) — lanes keep the
    /// per-kind decisions independent of each other.
    fn unit(&self, index: u64, lane: u64) -> f64 {
        let h = splitmix64(self.seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F) ^ (lane << 56));
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Decides the fate of the next host command of class `op`.
    /// `corruptible` marks functional readbacks (virtual reads move no data,
    /// so there is nothing to corrupt). Advances the command cursor and
    /// updates [`stats`](Self::stats) for whatever is injected.
    pub fn next(&mut self, op: FaultOp, corruptible: bool) -> Option<Injection> {
        let index = self.cursor;
        self.cursor += 1;
        let fail = |kind: FaultKind| {
            Injection::Fail(DeviceFault {
                kind,
                op,
                command_index: index,
            })
        };
        if self.lost {
            // Permanent: every later command fails, but the loss is counted
            // once — consequences are not new injections.
            return Some(fail(FaultKind::DeviceLoss));
        }
        if self.profile.device_loss_at.is_some_and(|at| index >= at) {
            self.lost = true;
            self.stats.bump(FaultKind::DeviceLoss);
            return Some(fail(FaultKind::DeviceLoss));
        }
        let eligible = |kind: FaultKind| match kind {
            FaultKind::TransferTimeout => op != FaultOp::Kernel,
            FaultKind::ReadCorruption => op == FaultOp::Read && corruptible,
            FaultKind::KernelLaunchFail => op == FaultOp::Kernel,
            FaultKind::QueueStall => true,
            FaultKind::DeviceLoss => true,
        };
        if let Some(&(_, kind)) = self
            .explicit
            .iter()
            .find(|&&(at, kind)| at == index && eligible(kind))
        {
            return Some(self.apply(kind, op, index));
        }
        // Rate-driven, in severity order: a command that would both stall
        // and time out times out.
        let rate = |kind: FaultKind| match kind {
            FaultKind::TransferTimeout => self.profile.transfer_timeout,
            FaultKind::ReadCorruption => self.profile.read_corruption,
            FaultKind::KernelLaunchFail => self.profile.kernel_launch_fail,
            FaultKind::QueueStall => self.profile.queue_stall,
            FaultKind::DeviceLoss => 0.0,
        };
        for (lane, kind) in [
            FaultKind::TransferTimeout,
            FaultKind::KernelLaunchFail,
            FaultKind::ReadCorruption,
            FaultKind::QueueStall,
        ]
        .into_iter()
        .enumerate()
        {
            if eligible(kind) && self.unit(index, lane as u64) < rate(kind) {
                return Some(self.apply(kind, op, index));
            }
        }
        None
    }

    fn apply(&mut self, kind: FaultKind, op: FaultOp, index: u64) -> Injection {
        self.stats.bump(kind);
        match kind {
            FaultKind::DeviceLoss => {
                self.lost = true;
                Injection::Fail(DeviceFault {
                    kind,
                    op,
                    command_index: index,
                })
            }
            FaultKind::ReadCorruption => Injection::CorruptBit {
                entropy: splitmix64(self.seed ^ index.wrapping_mul(0xD6E8_FEB8_6659_FD93)),
            },
            FaultKind::QueueStall => Injection::Stall {
                ns: self.profile.stall_ns,
            },
            FaultKind::TransferTimeout | FaultKind::KernelLaunchFail => {
                Injection::Fail(DeviceFault {
                    kind,
                    op,
                    command_index: index,
                })
            }
        }
    }
}

/// FNV-1a over the little-endian bytes of `words` — the cheap per-chunk
/// checksum the recovery layer compares between the device-side buffer and
/// the words the host actually received (DESIGN.md §10.3).
pub fn checksum_words(words: &[u32]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &w in words {
        for b in w.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let run = || {
            let mut p = FaultPlan::new(7, FaultProfile::mixed());
            (0..100)
                .map(|i| {
                    let op = match i % 3 {
                        0 => FaultOp::Write,
                        1 => FaultOp::Kernel,
                        _ => FaultOp::Read,
                    };
                    p.next(op, true)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn quiet_plan_injects_nothing() {
        let mut p = FaultPlan::quiet();
        for _ in 0..1000 {
            assert_eq!(p.next(FaultOp::Write, false), None);
        }
        assert_eq!(p.stats().total(), 0);
    }

    #[test]
    fn device_loss_is_permanent_and_counted_once() {
        let mut p = FaultPlan::new(
            1,
            FaultProfile {
                device_loss_at: Some(3),
                ..FaultProfile::none()
            },
        );
        for i in 0..3u64 {
            assert_eq!(p.next(FaultOp::Write, false), None, "command {i}");
        }
        for _ in 0..5 {
            match p.next(FaultOp::Kernel, false) {
                Some(Injection::Fail(f)) => assert_eq!(f.kind, FaultKind::DeviceLoss),
                other => panic!("expected loss, got {other:?}"),
            }
        }
        assert_eq!(p.stats().device_losses, 1, "loss counted once");
        assert!(p.device_lost());
    }

    #[test]
    fn explicit_injection_respects_eligibility() {
        // A corruption scheduled on a kernel command is ignored; on a
        // functional read it fires.
        let mut p = FaultPlan::quiet()
            .inject_at(0, FaultKind::ReadCorruption)
            .inject_at(1, FaultKind::ReadCorruption);
        assert_eq!(p.next(FaultOp::Kernel, false), None);
        assert!(matches!(
            p.next(FaultOp::Read, true),
            Some(Injection::CorruptBit { .. })
        ));
        assert_eq!(p.stats().read_corruptions, 1);
    }

    #[test]
    fn rates_drive_expected_injection_volume() {
        let mut p = FaultPlan::new(
            99,
            FaultProfile {
                transfer_timeout: 0.2,
                ..FaultProfile::none()
            },
        );
        let mut hits = 0;
        for _ in 0..2000 {
            if p.next(FaultOp::Write, false).is_some() {
                hits += 1;
            }
        }
        assert!(
            (300..500).contains(&hits),
            "20% of 2000 should be ~400, got {hits}"
        );
        assert_eq!(p.stats().transfer_timeouts, hits);
    }

    #[test]
    fn stats_reconcile_with_injections() {
        let mut p = FaultPlan::new(5, FaultProfile::mixed());
        let mut seen = FaultStats::default();
        for i in 0..200u64 {
            let op = match i % 3 {
                0 => FaultOp::Write,
                1 => FaultOp::Kernel,
                _ => FaultOp::Read,
            };
            match p.next(op, op == FaultOp::Read) {
                Some(Injection::Fail(f))
                    if f.kind != FaultKind::DeviceLoss || seen.device_losses == 0 =>
                {
                    seen.bump(f.kind);
                }
                Some(Injection::Fail(_)) => {}
                Some(Injection::CorruptBit { .. }) => seen.bump(FaultKind::ReadCorruption),
                Some(Injection::Stall { .. }) => seen.bump(FaultKind::QueueStall),
                None => {}
            }
        }
        assert_eq!(p.stats(), seen);
        assert!(p.stats().total() > 0, "mixed profile must inject something");
    }

    #[test]
    fn profiles_resolve_by_name() {
        for name in FaultProfile::NAMES {
            assert!(FaultProfile::by_name(name).is_some(), "{name}");
        }
        assert!(FaultProfile::by_name("nope").is_none());
    }

    #[test]
    fn checksum_detects_single_bit_flips() {
        let words: Vec<u32> = (0..257u32).map(|i| i.wrapping_mul(2654435761)).collect();
        let base = checksum_words(&words);
        let mut w = words.clone();
        w[200] ^= 1 << 17;
        assert_ne!(checksum_words(&w), base);
        assert_eq!(checksum_words(&words), base, "pure function");
    }

    #[test]
    fn fault_display_and_error_chain() {
        let f = DeviceFault {
            kind: FaultKind::TransferTimeout,
            op: FaultOp::Write,
            command_index: 17,
        };
        let msg = f.to_string();
        assert!(
            msg.contains("transfer_timeout") && msg.contains("#17"),
            "{msg}"
        );
        let e: &dyn std::error::Error = &f;
        assert!(e.source().is_none());
    }
}
