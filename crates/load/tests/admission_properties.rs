//! Property tests for the admission layer: token-bucket rate bounds, EDF
//! dispatch order, the admitted-is-never-shed guarantee, and brownout
//! recovery, over seeded arbitrary inputs.

use proptest::prelude::*;
use snp_gpu_model::devices;
use snp_load::{
    run, AdmissionConfig, ArrivalKind, BrownoutConfig, BrownoutController, LoadConfig, Outcome,
    QueuedQuery, Scheduler, Template, Tier, TokenBucket,
};

/// Strategy: a non-decreasing virtual arrival sequence (ns).
fn arrival_stream(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..5_000_000, 1..=max_len).prop_map(|deltas| {
        deltas
            .iter()
            .scan(0u64, |t, d| {
                *t += d;
                Some(*t)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Over any window starting from a full bucket, the number of accepted
    /// requests never exceeds `burst + rate × elapsed` — the sustained
    /// rate bound admission enforces per tenant.
    #[test]
    fn token_bucket_never_exceeds_rate_plus_burst(
        arrivals in arrival_stream(200),
        rate in 1.0f64..20_000.0,
        burst in 1.0f64..16.0,
    ) {
        let mut bucket = TokenBucket::new(rate, burst);
        let mut accepted = 0usize;
        for &t in &arrivals {
            if bucket.try_take(t) {
                accepted += 1;
            }
        }
        let window_s = *arrivals.last().unwrap() as f64 / 1e9;
        let bound = burst + rate * window_s;
        prop_assert!(
            accepted as f64 <= bound + 1e-6,
            "accepted {} > bound {:.3} (rate {:.1}, burst {:.1}, window {:.6}s)",
            accepted, bound, rate, burst, window_s
        );
    }

    /// Within one tenant the scheduler dispatches strictly by the EDF key
    /// `(deadline, seq)`, whatever order queries were pushed in.
    #[test]
    fn edf_dispatch_is_ordered_by_deadline_then_seq(
        entries in prop::collection::vec((0u64..1_000_000, 1u64..1_000), 1..40),
    ) {
        let mut s = Scheduler::new(&[1.0], false);
        for (seq, &(deadline_ns, est_ns)) in entries.iter().enumerate() {
            s.push(QueuedQuery {
                seq: seq as u64,
                tenant: 0,
                template: Template::Ld,
                arrival_ns: 0,
                deadline_ns,
                est_ns,
            });
        }
        let keys: Vec<(u64, u64)> =
            std::iter::from_fn(|| s.pop()).map(|q| (q.deadline_ns, q.seq)).collect();
        prop_assert_eq!(keys.len(), entries.len());
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]), "{:?}", keys);
    }

    /// Whatever pressure history the controller saw, sustained calm always
    /// recovers it to the full tier — brownout cannot latch down.
    #[test]
    fn brownout_always_recovers_under_sustained_calm(
        observations in prop::collection::vec((0usize..64, 0.0f64..4.0), 0..60),
        dwell in 1usize..5,
    ) {
        let cfg = BrownoutConfig { dwell, ..BrownoutConfig::default() };
        let mut bc = BrownoutController::new(cfg);
        let mut now = 0u64;
        for &(depth, burn) in &observations {
            now += 1;
            bc.observe(now, depth, burn);
        }
        // Two full tier steps (CPU-only → reduced → full) need 2×dwell calm
        // observations; give it that plus slack.
        for _ in 0..(2 * dwell + 2) {
            now += 1;
            bc.observe(now, 0, 0.0);
        }
        prop_assert_eq!(bc.tier(), Tier::Full);
    }
}

proptest! {
    // End-to-end runs are costly (each spawns real engine executions), so
    // fewer cases — the per-case input space is still broad.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// End-to-end admission invariants over arbitrary seeds and offered
    /// rates: an admitted query is never shed later (admitted == completed),
    /// every shed is typed with zero service, and per-tenant admissions
    /// respect the tenant's sustained rate bound.
    #[test]
    fn admitted_queries_always_complete_and_quota_bounds_hold(
        seed in 0u64..1_000,
        rate in 1_000.0f64..200_000.0,
        bursty in any::<bool>(),
    ) {
        let mut cfg = LoadConfig::new(
            devices::titan_v(),
            vec![Template::Ld, Template::FastIdTopK, Template::Mixture],
        );
        cfg.queries = 24;
        cfg.seed = seed;
        cfg.rate_qps = rate;
        cfg.arrival = if bursty { ArrivalKind::Bursty } else { ArrivalKind::Poisson };
        cfg.record_timeline = false;
        cfg.admission = AdmissionConfig::standard();
        let report = run(&cfg);
        let adm = report.admission.as_ref().expect("admission enabled");

        // Admitted ⇒ dispatched ⇒ completed: shedding only happens at the
        // door, so completions account for every admitted query.
        let completions = report.outcomes.clean
            + report.outcomes.recovered
            + report.outcomes.degraded
            + report.outcomes.fault
            + report.outcomes.error;
        prop_assert_eq!(adm.admitted, completions);
        prop_assert_eq!(adm.offered, cfg.queries);

        // Sheds are typed, never ran, and tallied by gate.
        let mut shed_seen = 0usize;
        for r in &report.records {
            if let Outcome::Shed(reason) = &r.outcome {
                shed_seen += 1;
                prop_assert_eq!(r.service_ns, 0);
                prop_assert!(!reason.label().is_empty());
            }
        }
        prop_assert_eq!(shed_seen, adm.shed_quota + adm.shed_queue_full + adm.shed_deadline);

        // Per-tenant token-bucket bound: admissions within the tenant's
        // arrival window never exceed burst + rate × window.
        for tenant in &adm.tenants {
            let arrivals: Vec<u64> = report
                .records
                .iter()
                .filter(|r| r.tenant == tenant.name)
                .map(|r| r.arrival_ns)
                .collect();
            if arrivals.is_empty() {
                continue;
            }
            let window_s = (*arrivals.iter().max().unwrap()) as f64 / 1e9;
            let bound = AdmissionConfig::DEFAULT_TENANT_BURST
                + AdmissionConfig::DEFAULT_TENANT_RATE * window_s;
            prop_assert!(
                tenant.admitted as f64 <= bound + 1e-6,
                "tenant {} admitted {} > bound {:.3}",
                tenant.name, tenant.admitted, bound
            );
        }
    }
}
