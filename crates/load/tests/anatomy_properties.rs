//! Property tests for the latency-anatomy decomposition: per-query
//! segments must sum to the end-to-end latency within 1 ns for every
//! accepted query, across FIFO and admission dispatch modes and under
//! injected device loss — the exactness contract DESIGN.md §16 promises.

use proptest::prelude::*;
use snp_core::FaultProfile;
use snp_gpu_model::devices;
use snp_load::{
    run, AdmissionConfig, AnatomyReport, ArrivalKind, FaultSpec, LoadConfig, Segment, Template,
};

fn anatomy_cfg(seed: u64, rate: f64, admission: bool, bursty: bool) -> LoadConfig {
    let mut cfg = LoadConfig::new(
        devices::titan_v(),
        vec![Template::Ld, Template::FastIdTopK, Template::Mixture],
    );
    cfg.queries = 20;
    cfg.seed = seed;
    cfg.rate_qps = rate;
    cfg.arrival = if bursty {
        ArrivalKind::Bursty
    } else {
        ArrivalKind::Poisson
    };
    cfg.record_timeline = false;
    cfg.anatomy = true;
    if admission {
        cfg.admission = AdmissionConfig::standard();
    }
    cfg
}

/// Asserts the §16 exactness contract over a finished run: one anatomy per
/// accepted query, each summing to its latency within 1 ns (the sweep-line
/// is integral, so "within 1 ns" is in practice "exactly").
fn assert_exact(cfg: &LoadConfig) {
    let report = run(cfg);
    let anatomy = report.anatomy.as_ref().expect("anatomy enabled");
    let accepted: Vec<_> = report
        .records
        .iter()
        .filter(|r| !r.outcome.is_shed())
        .collect();
    prop_assert_eq!(anatomy.queries, accepted.len());
    // Re-derive per-query sums by re-running aggregation inputs: the
    // report only keeps bands, so check the conservation laws they obey.
    let band_total: u64 = anatomy.bands.iter().map(|b| b.total_latency_ns).sum();
    let record_total: u64 = accepted.iter().map(|r| r.latency_ns).sum();
    prop_assert_eq!(band_total, record_total, "band latency == record latency");
    for band in &anatomy.bands {
        let seg_sum: u64 = band.segment_ns.iter().sum();
        prop_assert!(
            seg_sum.abs_diff(band.total_latency_ns) <= band.queries as u64,
            "band {} segments {} vs latency {} over {} queries",
            band.label,
            seg_sum,
            band.total_latency_ns,
            band.queries
        );
        prop_assert_eq!(
            seg_sum,
            band.total_latency_ns,
            "sweep-line attribution is integral, so the sum is exact"
        );
    }
}

proptest! {
    // Each case replays a full stream of engine runs; keep the case count
    // modest — the seed/rate space still varies arrivals, templates, and
    // queueing shape widely.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// FIFO mode (admission disabled): exact decomposition at any seed and
    /// offered rate, idle through saturated.
    #[test]
    fn segments_sum_to_latency_in_fifo_mode(
        seed in 0u64..1_000,
        rate in 500.0f64..100_000.0,
        bursty in any::<bool>(),
    ) {
        assert_exact(&anatomy_cfg(seed, rate, false, bursty));
    }

    /// Admission mode (WFQ+EDF, quotas, brownout): shed queries are
    /// excluded, accepted ones still decompose exactly — including
    /// CpuOnly-tier queries that never touch the engine.
    #[test]
    fn segments_sum_to_latency_under_admission(
        seed in 0u64..1_000,
        rate in 2_000.0f64..200_000.0,
    ) {
        assert_exact(&anatomy_cfg(seed, rate, true, true));
    }

    /// Device loss mid-run: retry backoff and CPU fallback spans must be
    /// attributed, not leak into `other` as unexplained time.
    #[test]
    fn segments_sum_to_latency_under_device_loss(
        seed in 0u64..200,
        at_query in 0usize..20,
    ) {
        let mut cfg = anatomy_cfg(seed, 4_000.0, false, false);
        cfg.fault = Some(FaultSpec {
            profile_name: "loss".into(),
            profile: FaultProfile {
                device_loss_at: Some(2),
                ..FaultProfile::loss()
            },
            at_query: Some(at_query),
        });
        assert_exact(&cfg);
    }
}

/// The acceptance bar from the issue: on the PR 9 chaos/overload scenario
/// the anatomy must attribute at least 95% of accepted-query p99-band
/// latency to named segments (everything except `other`).
#[test]
fn chaos_overload_tail_latency_is_at_least_95_percent_attributed() {
    let mut cfg = anatomy_cfg(42, 16_000.0, true, true);
    cfg.queries = 96;
    cfg.fault = Some(FaultSpec {
        profile_name: "transient".into(),
        profile: FaultProfile::transient(),
        at_query: None,
    });
    let report = run(&cfg);
    let anatomy = report.anatomy.expect("anatomy enabled");
    let tail = anatomy.tail_band();
    assert!(tail.queries > 0, "overload run has a tail band");
    assert!(
        tail.attributed_fraction() >= 0.95,
        "p99+ attribution {:.4} below the 95% bar: {}",
        tail.attributed_fraction(),
        anatomy.render_text()
    );
    assert!(
        anatomy.attributed_fraction() >= 0.95,
        "overall attribution {:.4}",
        anatomy.attributed_fraction()
    );
    // Queue time dominates an overloaded tail; it must be named, and the
    // residual `other` can only be a sliver.
    assert!(tail.segment_ns[Segment::SchedQueue as usize] > 0 || tail.total_latency_ns == 0);
    let _ = AnatomyReport::aggregate(&[]); // API smoke: empty aggregation is valid
}
