//! Per-query latency anatomy: decomposes every accepted query's
//! end-to-end latency into named segments and aggregates them into
//! percentile-band budget tables (DESIGN.md §16).
//!
//! The decomposition is **exact**: virtual time has no sampling noise, so
//! the segments of one query always sum to its end-to-end latency to the
//! nanosecond. Queue time (`sched_queue`) comes straight from the
//! dispatcher (`start − arrival`); the service window is attributed by a
//! sweep-line over the query's own trace spans, clipped to the post-init
//! window, with overlap resolved by a fixed priority (retry >
//! CPU-fallback > kernel > D2H > H2D > pack) so double-buffered overlap is
//! charged to the resource most likely on the critical path. Whatever no
//! span covers — host-side orchestration gaps — lands in `other`, which is
//! what keeps the sum exact and makes "attributed fraction" an honest
//! completeness figure rather than an assumption.

use snp_trace::{Trace, TraceEvent};

use crate::admission::Tier;
use crate::slo::percentile;

/// One named latency segment. Order is the stable rendering order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    /// Time between arrival and the admission verdict. Admission decides
    /// at the arrival instant in this runner, so this is currently always
    /// zero — kept in the taxonomy so the budget states it, rather than
    /// leaving readers to wonder where admission time went.
    AdmissionWait,
    /// Time queued in the dispatcher (`start − arrival`).
    SchedQueue,
    /// Service at the [`Tier::CpuOnly`] brownout tier: the modeled CPU
    /// baseline, charged whole (the engine is never touched).
    BrownoutCpu,
    /// Host-side packing into the paper's 2-bit layout.
    Pack,
    /// Host→device transfers.
    H2d,
    /// Device→host transfers (reads and checksum readbacks).
    D2h,
    /// Kernel compute.
    Kernel,
    /// Recovery retry backoff.
    RetryBackoff,
    /// CPU-fallback compute after device loss.
    CpuFallback,
    /// Post-init service time no span accounts for (host orchestration
    /// gaps). The exactness remainder — small when attribution is good.
    Other,
}

/// Number of segments (array dimension of [`QueryAnatomy::segment_ns`]).
pub const SEGMENT_COUNT: usize = 10;

impl Segment {
    /// Every segment, in rendering order.
    pub const ALL: [Segment; SEGMENT_COUNT] = [
        Segment::AdmissionWait,
        Segment::SchedQueue,
        Segment::BrownoutCpu,
        Segment::Pack,
        Segment::H2d,
        Segment::D2h,
        Segment::Kernel,
        Segment::RetryBackoff,
        Segment::CpuFallback,
        Segment::Other,
    ];

    /// Stable snake_case label (JSON keys and table rows).
    pub fn label(self) -> &'static str {
        match self {
            Segment::AdmissionWait => "admission_wait",
            Segment::SchedQueue => "sched_queue",
            Segment::BrownoutCpu => "brownout_cpu",
            Segment::Pack => "pack",
            Segment::H2d => "h2d",
            Segment::D2h => "d2h",
            Segment::Kernel => "kernel",
            Segment::RetryBackoff => "retry_backoff",
            Segment::CpuFallback => "cpu_fallback",
            Segment::Other => "other",
        }
    }

    fn index(self) -> usize {
        Segment::ALL
            .iter()
            .position(|s| *s == self)
            .expect("listed")
    }

    /// Sweep-line priority when spans overlap (higher wins the instant).
    fn priority(self) -> u8 {
        match self {
            Segment::RetryBackoff => 5,
            Segment::CpuFallback => 4,
            Segment::Kernel => 3,
            Segment::D2h => 2,
            Segment::H2d => 1,
            _ => 0,
        }
    }
}

/// The segment a trace span charges time to, if any. Engine bookkeeping
/// spans (`init`, `run`) and stream-level spans (`query`, `shed`) shape
/// the window but never receive time themselves.
fn segment_of(ev: &TraceEvent) -> Option<Segment> {
    match ev.cat {
        "retry" => Some(Segment::RetryBackoff),
        "fallback" => Some(Segment::CpuFallback),
        "kernel" => Some(Segment::Kernel),
        "pack" => Some(Segment::Pack),
        "transfer" => Some(match &*ev.name {
            "read" | "checksum" => Segment::D2h,
            _ => Segment::H2d,
        }),
        _ => None,
    }
}

/// One query's exact latency decomposition.
#[derive(Debug, Clone)]
pub struct QueryAnatomy {
    /// Stream-wide query id.
    pub query_id: u64,
    /// End-to-end latency this anatomy decomposes.
    pub latency_ns: u64,
    /// Nanoseconds per segment, indexed in [`Segment::ALL`] order.
    pub segment_ns: [u64; SEGMENT_COUNT],
}

impl QueryAnatomy {
    /// Nanoseconds attributed to `segment`.
    pub fn get(&self, segment: Segment) -> u64 {
        self.segment_ns[segment.index()]
    }

    /// Sum over all segments — always equals [`latency_ns`](Self::latency_ns).
    pub fn total_ns(&self) -> u64 {
        self.segment_ns.iter().sum()
    }
}

/// Decomposes one accepted query's latency. `trace` is the query's own
/// tagged trace (`None` when tracing was off — the service window then
/// lands in [`Segment::Other`] rather than being guessed at).
pub fn decompose_query(
    query_id: u64,
    queue_wait_ns: u64,
    service_ns: u64,
    tier: Tier,
    trace: Option<&Trace>,
) -> QueryAnatomy {
    let mut segment_ns = [0u64; SEGMENT_COUNT];
    segment_ns[Segment::SchedQueue.index()] = queue_wait_ns;
    if tier == Tier::CpuOnly {
        segment_ns[Segment::BrownoutCpu.index()] = service_ns;
    } else if service_ns > 0 {
        match trace {
            None => segment_ns[Segment::Other.index()] = service_ns,
            Some(trace) => attribute_service(trace, service_ns, &mut segment_ns),
        }
    }
    QueryAnatomy {
        query_id,
        latency_ns: queue_wait_ns + service_ns,
        segment_ns,
    }
}

/// Sweep-line attribution of the post-init service window.
///
/// The per-query trace runs on the query's local clock: device open spans
/// `[0, init_ns]` and service is the `service_ns` window after it. Each
/// elementary interval between span boundaries is charged to the
/// highest-priority segment whose span covers it; uncovered intervals go
/// to [`Segment::Other`]. Every nanosecond of the window is charged to
/// exactly one segment, so the decomposition is exact by construction.
fn attribute_service(trace: &Trace, service_ns: u64, segment_ns: &mut [u64; SEGMENT_COUNT]) {
    let window_lo = trace
        .events
        .iter()
        .filter(|e| e.cat == "init")
        .map(|e| e.end_ns)
        .max()
        .unwrap_or(0);
    let window_hi = window_lo + service_ns;

    // Classified spans, clipped to the service window.
    let mut spans: Vec<(u64, u64, Segment)> = Vec::new();
    let mut cuts: Vec<u64> = vec![window_lo, window_hi];
    for ev in &trace.events {
        let Some(seg) = segment_of(ev) else { continue };
        let lo = ev.start_ns.max(window_lo);
        let hi = ev.end_ns.min(window_hi);
        if lo >= hi {
            continue;
        }
        cuts.push(lo);
        cuts.push(hi);
        spans.push((lo, hi, seg));
    }
    cuts.sort_unstable();
    cuts.dedup();

    for pair in cuts.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        if a < window_lo || b > window_hi {
            continue;
        }
        let winner = spans
            .iter()
            .filter(|(lo, hi, _)| *lo <= a && *hi >= b)
            .map(|(_, _, seg)| *seg)
            .max_by_key(|seg| seg.priority())
            .unwrap_or(Segment::Other);
        segment_ns[winner.index()] += b - a;
    }
}

/// One percentile band's aggregated budget.
#[derive(Debug, Clone)]
pub struct BandAnatomy {
    /// Band label (`p50`, `p50-p90`, `p90-p99`, `p99+`).
    pub label: &'static str,
    /// Queries in the band.
    pub queries: usize,
    /// Sum of end-to-end latencies in the band.
    pub total_latency_ns: u64,
    /// Summed nanoseconds per segment, [`Segment::ALL`] order.
    pub segment_ns: [u64; SEGMENT_COUNT],
}

impl BandAnatomy {
    fn empty(label: &'static str) -> BandAnatomy {
        BandAnatomy {
            label,
            queries: 0,
            total_latency_ns: 0,
            segment_ns: [0; SEGMENT_COUNT],
        }
    }

    /// Fraction of the band's latency attributed to segments other than
    /// [`Segment::Other`] (1.0 for an empty band).
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_latency_ns == 0 {
            return 1.0;
        }
        let other = self.segment_ns[Segment::Other.index()];
        1.0 - other as f64 / self.total_latency_ns as f64
    }
}

/// The percentile-band anatomy table over a run's accepted queries.
#[derive(Debug, Clone)]
pub struct AnatomyReport {
    /// Accepted queries decomposed.
    pub queries: usize,
    /// Sum of all accepted end-to-end latencies.
    pub total_latency_ns: u64,
    /// The four bands, tail-ward order: `p50`, `p50-p90`, `p90-p99`, `p99+`.
    pub bands: Vec<BandAnatomy>,
}

impl AnatomyReport {
    /// Aggregates per-query anatomies into percentile bands. Band
    /// thresholds are the exact nearest-rank p50/p90/p99 of the latencies;
    /// a query lands in `p99+` when its latency reaches the p99 value.
    pub fn aggregate(anatomies: &[QueryAnatomy]) -> AnatomyReport {
        let mut lat: Vec<u64> = anatomies.iter().map(|a| a.latency_ns).collect();
        lat.sort_unstable();
        let (t50, t90, t99) = (
            percentile(&lat, 50.0),
            percentile(&lat, 90.0),
            percentile(&lat, 99.0),
        );
        let mut bands = vec![
            BandAnatomy::empty("p50"),
            BandAnatomy::empty("p50-p90"),
            BandAnatomy::empty("p90-p99"),
            BandAnatomy::empty("p99+"),
        ];
        let mut total_latency_ns = 0u64;
        for a in anatomies {
            let band = if !lat.is_empty() && a.latency_ns >= t99 {
                3
            } else if a.latency_ns <= t50 {
                0
            } else if a.latency_ns <= t90 {
                1
            } else {
                2
            };
            let b = &mut bands[band];
            b.queries += 1;
            b.total_latency_ns += a.latency_ns;
            for (acc, v) in b.segment_ns.iter_mut().zip(&a.segment_ns) {
                *acc += v;
            }
            total_latency_ns += a.latency_ns;
        }
        AnatomyReport {
            queries: anatomies.len(),
            total_latency_ns,
            bands,
        }
    }

    /// Overall attributed fraction across every band.
    pub fn attributed_fraction(&self) -> f64 {
        if self.total_latency_ns == 0 {
            return 1.0;
        }
        let other: u64 = self
            .bands
            .iter()
            .map(|b| b.segment_ns[Segment::Other.index()])
            .sum();
        1.0 - other as f64 / self.total_latency_ns as f64
    }

    /// The `p99+` band — the tail the budget exists to explain.
    pub fn tail_band(&self) -> &BandAnatomy {
        self.bands.last().expect("four bands always present")
    }

    /// Plain-text anatomy table: one row per segment, one column per
    /// band, each cell `total_ns (share of band latency)`.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "latency anatomy — {} accepted queries, {:.1}% attributed",
            self.queries,
            self.attributed_fraction() * 100.0
        );
        let _ = write!(out, "{:<15}", "segment");
        for b in &self.bands {
            let _ = write!(out, "  {:>20}", format!("{} (n={})", b.label, b.queries));
        }
        out.push('\n');
        for seg in Segment::ALL {
            let _ = write!(out, "{:<15}", seg.label());
            for b in &self.bands {
                let ns = b.segment_ns[seg.index()];
                let pct = if b.total_latency_ns == 0 {
                    0.0
                } else {
                    ns as f64 * 100.0 / b.total_latency_ns as f64
                };
                let _ = write!(out, "  {:>20}", format!("{ns} ({pct:.1}%)"));
            }
            out.push('\n');
        }
        let _ = write!(out, "{:<15}", "total");
        for b in &self.bands {
            let _ = write!(out, "  {:>20}", b.total_latency_ns);
        }
        out.push('\n');
        out
    }

    /// Byte-reproducible JSON rendering (fixed key order, integer ns,
    /// six-decimal fractions).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"queries\":{},\"total_latency_ns\":{},\"attributed_fraction\":{:.6},\"bands\":[",
            self.queries,
            self.total_latency_ns,
            self.attributed_fraction()
        );
        for (i, b) in self.bands.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"band\":\"{}\",\"queries\":{},\"total_latency_ns\":{},\
                 \"attributed_fraction\":{:.6},\"segments\":{{",
                b.label,
                b.queries,
                b.total_latency_ns,
                b.attributed_fraction()
            );
            for (j, seg) in Segment::ALL.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{}", seg.label(), b.segment_ns[seg.index()]);
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_trace::{TimeDomain, Tracer};

    fn trace_with(spans: &[(&'static str, &'static str, u64, u64)]) -> Trace {
        let t = Tracer::enabled();
        let tr = t.track("engine", TimeDomain::Virtual);
        for &(cat, name, lo, hi) in spans {
            t.span(tr, cat, name, lo, hi);
        }
        t.snapshot().unwrap()
    }

    #[test]
    fn decomposition_is_exact_and_charges_each_instant_once() {
        // init [0,100], then pack, an overlapping write+kernel, a read,
        // and an uncovered gap at the end.
        let trace = trace_with(&[
            ("init", "device open", 0, 100),
            ("pack", "host pack", 100, 120),
            ("transfer", "write", 120, 160),
            ("kernel", "kernel", 140, 200),
            ("transfer", "read", 200, 230),
        ]);
        let a = decompose_query(7, 50, 150, Tier::Full, Some(&trace));
        assert_eq!(a.latency_ns, 200);
        assert_eq!(a.total_ns(), a.latency_ns, "segments sum exactly");
        assert_eq!(a.get(Segment::SchedQueue), 50);
        assert_eq!(a.get(Segment::Pack), 20);
        // Kernel wins the [140,160) overlap with the write.
        assert_eq!(a.get(Segment::H2d), 20);
        assert_eq!(a.get(Segment::Kernel), 60);
        assert_eq!(a.get(Segment::D2h), 30);
        assert_eq!(a.get(Segment::Other), 20, "uncovered tail of the window");
    }

    #[test]
    fn retry_and_fallback_outrank_everything() {
        let trace = trace_with(&[
            ("init", "device open", 0, 10),
            ("kernel", "kernel", 10, 50),
            ("retry", "backoff", 20, 30),
            ("fallback", "cpu fallback", 40, 60),
        ]);
        let a = decompose_query(0, 0, 50, Tier::Full, Some(&trace));
        assert_eq!(a.get(Segment::Kernel), 20);
        assert_eq!(a.get(Segment::RetryBackoff), 10);
        assert_eq!(a.get(Segment::CpuFallback), 20);
        assert_eq!(a.total_ns(), 50);
    }

    #[test]
    fn cpu_only_tier_charges_brownout_without_a_trace() {
        let a = decompose_query(3, 40, 1_000, Tier::CpuOnly, None);
        assert_eq!(a.get(Segment::BrownoutCpu), 1_000);
        assert_eq!(a.get(Segment::SchedQueue), 40);
        assert_eq!(a.total_ns(), 1_040);
    }

    #[test]
    fn missing_trace_lands_in_other_not_thin_air() {
        let a = decompose_query(0, 5, 95, Tier::Full, None);
        assert_eq!(a.get(Segment::Other), 95);
        assert_eq!(a.total_ns(), 100);
    }

    #[test]
    fn spans_outside_the_service_window_are_clipped() {
        // A span leaking past end-to-end (or before init) must not create
        // time out of nothing.
        let trace = trace_with(&[
            ("init", "device open", 0, 100),
            ("kernel", "kernel", 50, 400),
        ]);
        let a = decompose_query(0, 0, 200, Tier::Full, Some(&trace));
        assert_eq!(a.get(Segment::Kernel), 200);
        assert_eq!(a.total_ns(), 200);
    }

    #[test]
    fn bands_partition_queries_and_preserve_totals() {
        let mk = |id: u64, lat: u64| QueryAnatomy {
            query_id: id,
            latency_ns: lat,
            segment_ns: {
                let mut s = [0u64; SEGMENT_COUNT];
                s[Segment::Kernel.index()] = lat;
                s
            },
        };
        let anatomies: Vec<QueryAnatomy> = (0..100).map(|i| mk(i, 1_000 + i * 100)).collect();
        let report = AnatomyReport::aggregate(&anatomies);
        assert_eq!(report.queries, 100);
        assert_eq!(
            report.bands.iter().map(|b| b.queries).sum::<usize>(),
            100,
            "bands partition the queries"
        );
        assert_eq!(
            report.bands.iter().map(|b| b.total_latency_ns).sum::<u64>(),
            report.total_latency_ns
        );
        assert!(report.tail_band().queries >= 1, "p99+ holds the max");
        assert_eq!(report.attributed_fraction(), 1.0);
        let text = report.render_text();
        assert!(text.contains("p99+"), "{text}");
        assert!(text.contains("kernel"), "{text}");
    }

    #[test]
    fn json_is_deterministic_and_carries_every_segment() {
        let a = decompose_query(1, 10, 0, Tier::Full, None);
        let report = AnatomyReport::aggregate(&[a]);
        let j1 = report.to_json();
        let j2 = report.to_json();
        assert_eq!(j1, j2);
        for seg in Segment::ALL {
            assert!(j1.contains(&format!("\"{}\":", seg.label())), "{j1}");
        }
        assert!(j1.starts_with("{\"queries\":1,"));
        let doc = snp_trace::json::parse(&j1).expect("valid JSON");
        let bands = doc.as_obj().unwrap()["bands"].as_arr().unwrap();
        assert_eq!(bands.len(), 4);
    }

    #[test]
    fn empty_run_aggregates_cleanly() {
        let report = AnatomyReport::aggregate(&[]);
        assert_eq!(report.queries, 0);
        assert_eq!(report.attributed_fraction(), 1.0);
        assert_eq!(report.bands.len(), 4);
        assert!(!report.to_json().is_empty());
    }
}
