//! Latency objectives and error-budget accounting.
//!
//! An SLO here is per algorithm: a p50 and p99 latency objective plus an
//! error budget (the fraction of queries allowed to fail over the run).
//! Percentiles are computed *exactly* from the sorted per-query latencies
//! (nearest-rank), not from the bucketed histograms — the histograms feed
//! the live `snpgpu metrics` view, the report feeds the regression gate
//! and must be reproducible to the nanosecond.
//!
//! Burn is the classic error-budget ratio: `failed / (budget × count)`.
//! Burn < 1 means the run fit inside its budget, ≥ 1 means the budget is
//! exhausted and the SLO is breached regardless of latency.

/// Objectives for one algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Slo {
    /// Median latency objective (virtual ns).
    pub p50_ns: u64,
    /// Tail latency objective (virtual ns).
    pub p99_ns: u64,
    /// Fraction of queries allowed to end in a fault or error.
    pub error_budget: f64,
}

impl Slo {
    /// A very loose objective that only pathological runs breach.
    pub fn relaxed() -> Slo {
        Slo {
            p50_ns: 1_000_000_000,
            p99_ns: 5_000_000_000,
            error_budget: 0.05,
        }
    }
}

/// Per-algorithm objectives with a shared default.
#[derive(Debug, Clone)]
pub struct SloPolicy {
    /// `(algorithm slug, objectives)` overrides.
    pub per_algorithm: Vec<(&'static str, Slo)>,
    /// Used for any algorithm without an override.
    pub default: Slo,
}

impl SloPolicy {
    /// The objectives in force for `slug`.
    pub fn for_algorithm(&self, slug: &str) -> Slo {
        self.per_algorithm
            .iter()
            .find(|(s, _)| *s == slug)
            .map(|(_, slo)| *slo)
            .unwrap_or(self.default)
    }
}

impl Default for SloPolicy {
    /// Defaults calibrated against the modeled service times of the small
    /// loadgen workloads (sub-millisecond virtual latencies at low load):
    /// generous enough that an unsaturated, fault-free run passes on every
    /// modeled device, tight enough that saturation or a fault storm trips
    /// them.
    fn default() -> Self {
        SloPolicy {
            per_algorithm: vec![
                (
                    "ld",
                    Slo {
                        p50_ns: 10_000_000,
                        p99_ns: 40_000_000,
                        error_budget: 0.02,
                    },
                ),
                (
                    "fastid",
                    Slo {
                        p50_ns: 20_000_000,
                        p99_ns: 80_000_000,
                        error_budget: 0.02,
                    },
                ),
                (
                    "mixture",
                    Slo {
                        p50_ns: 20_000_000,
                        p99_ns: 80_000_000,
                        error_budget: 0.02,
                    },
                ),
            ],
            default: Slo::relaxed(),
        }
    }
}

/// Exact nearest-rank percentile (`q` in \[0, 100\]) of a **sorted** slice.
pub fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// The verdict for one algorithm over one run.
#[derive(Debug, Clone)]
pub struct SloOutcome {
    /// Algorithm slug.
    pub algorithm: &'static str,
    /// Queries of this algorithm in the run.
    pub count: usize,
    /// Exact p50 of end-to-end latency (virtual ns).
    pub p50_ns: u64,
    /// Exact p95.
    pub p95_ns: u64,
    /// Exact p99.
    pub p99_ns: u64,
    /// Worst observed latency.
    pub max_ns: u64,
    /// Mean latency.
    pub mean_ns: f64,
    /// p99 of time spent waiting in the queue.
    pub queue_wait_p99_ns: u64,
    /// Queries that ended in a fault or error.
    pub failed: usize,
    /// The objectives this was judged against.
    pub objective: Slo,
    /// `failed / (error_budget × count)`; 1e9 stands in for "budget is
    /// zero but failures happened" so the JSON stays finite.
    pub budget_burn: f64,
    /// Whether any objective was violated.
    pub breached: bool,
    /// Human-readable violations (empty when in SLO).
    pub reasons: Vec<String>,
}

/// Judges one algorithm's latency/outcome sample against `slo`.
///
/// `latencies_ns` and `queue_waits_ns` need not be pre-sorted.
pub fn evaluate(
    algorithm: &'static str,
    latencies_ns: &[u64],
    queue_waits_ns: &[u64],
    failed: usize,
    slo: Slo,
) -> SloOutcome {
    let mut lat = latencies_ns.to_vec();
    lat.sort_unstable();
    let mut qw = queue_waits_ns.to_vec();
    qw.sort_unstable();
    let count = lat.len();
    let p50 = percentile(&lat, 50.0);
    let p95 = percentile(&lat, 95.0);
    let p99 = percentile(&lat, 99.0);
    let allowed = slo.error_budget * count as f64;
    let budget_burn = if failed == 0 {
        0.0
    } else if allowed <= 0.0 {
        1e9
    } else {
        failed as f64 / allowed
    };
    let mut reasons = Vec::new();
    if count > 0 && p50 > slo.p50_ns {
        reasons.push(format!(
            "p50 {} ns exceeds objective {} ns",
            p50, slo.p50_ns
        ));
    }
    if count > 0 && p99 > slo.p99_ns {
        reasons.push(format!(
            "p99 {} ns exceeds objective {} ns",
            p99, slo.p99_ns
        ));
    }
    if budget_burn >= 1.0 {
        reasons.push(format!(
            "error budget exhausted: {failed}/{count} failed (burn {budget_burn:.2})"
        ));
    }
    SloOutcome {
        algorithm,
        count,
        p50_ns: p50,
        p95_ns: p95,
        p99_ns: p99,
        max_ns: lat.last().copied().unwrap_or(0),
        mean_ns: if count == 0 {
            0.0
        } else {
            lat.iter().sum::<u64>() as f64 / count as f64
        },
        queue_wait_p99_ns: percentile(&qw, 99.0),
        failed,
        objective: slo,
        budget_burn,
        breached: !reasons.is_empty(),
        reasons,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 99);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[7], 99.0), 7);
        assert_eq!(percentile(&[], 50.0), 0);
    }

    #[test]
    fn in_slo_run_has_no_reasons() {
        let slo = Slo {
            p50_ns: 100,
            p99_ns: 200,
            error_budget: 0.1,
        };
        let out = evaluate("ld", &[50, 60, 70, 80], &[0, 0, 1, 2], 0, slo);
        assert!(!out.breached, "{:?}", out.reasons);
        assert_eq!(out.budget_burn, 0.0);
        assert_eq!(out.p50_ns, 60);
    }

    #[test]
    fn tail_violation_and_burn_both_surface() {
        let slo = Slo {
            p50_ns: 100,
            p99_ns: 150,
            error_budget: 0.01,
        };
        let lats: Vec<u64> = (0..95).map(|_| 90).chain([400; 5]).collect();
        let out = evaluate("fastid", &lats, &[], 5, slo);
        assert!(out.breached);
        assert_eq!(out.reasons.len(), 2, "{:?}", out.reasons);
        assert!(out.budget_burn > 1.0);
    }

    #[test]
    fn zero_budget_with_failures_burns_finite() {
        let slo = Slo {
            p50_ns: u64::MAX,
            p99_ns: u64::MAX,
            error_budget: 0.0,
        };
        let out = evaluate("mixture", &[10, 20], &[], 1, slo);
        assert!(out.breached);
        assert_eq!(out.budget_burn, 1e9);
    }

    #[test]
    fn policy_falls_back_to_default() {
        let p = SloPolicy::default();
        assert_eq!(p.for_algorithm("ld").p50_ns, 10_000_000);
        assert_eq!(p.for_algorithm("unknown"), p.default);
    }
}
