//! Open-loop arrival processes.
//!
//! An *open-loop* generator decides arrival instants independently of how
//! fast the system drains them — queries that arrive while the engine is
//! busy wait in the queue, which is what makes the latency-vs-throughput
//! knee visible. Both processes run on the simulator's virtual clock and
//! are fully determined by `(kind, rate, seed)`, so a replayed stream is
//! byte-identical.

use rand::{rngs::StdRng, RngExt, SeedableRng};

/// Which arrival process shapes the query stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// Memoryless Poisson arrivals: exponential inter-arrival gaps with
    /// mean `1/rate` — the classic open-system model.
    Poisson,
    /// On/off bursts: short trains of closely spaced queries separated by
    /// long idle gaps. The long-run offered rate stays close to `rate`,
    /// but the instantaneous rate inside a burst is ~5× higher, which
    /// stresses queueing far more than Poisson at the same average load.
    Bursty,
}

impl ArrivalKind {
    /// Stable lowercase name (CLI argument and JSON field).
    pub fn name(self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::Bursty => "bursty",
        }
    }

    /// Parses a CLI name.
    pub fn by_name(name: &str) -> Option<ArrivalKind> {
        match name {
            "poisson" => Some(ArrivalKind::Poisson),
            "bursty" => Some(ArrivalKind::Bursty),
            _ => None,
        }
    }
}

/// Inverse-CDF exponential draw with mean `mean_ns`.
fn exp_gap(rng: &mut StdRng, mean_ns: f64) -> u64 {
    let u: f64 = rng.random();
    // 1 - u is in (0, 1], so ln is finite and the gap non-negative.
    (-(1.0 - u).ln() * mean_ns).round() as u64
}

/// The arrival instants (virtual ns since stream start) of `n` queries at
/// an offered rate of `rate_qps` queries per virtual second.
pub fn arrival_times(kind: ArrivalKind, rate_qps: f64, n: usize, seed: u64) -> Vec<u64> {
    assert!(rate_qps > 0.0, "offered rate must be positive");
    let mean_ns = 1e9 / rate_qps;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0u64;
    let mut out = Vec::with_capacity(n);
    match kind {
        ArrivalKind::Poisson => {
            for _ in 0..n {
                t += exp_gap(&mut rng, mean_ns);
                out.push(t);
            }
        }
        ArrivalKind::Bursty => {
            let mut left_in_burst = 0usize;
            for _ in 0..n {
                if left_in_burst == 0 {
                    left_in_burst = rng.random_range(3..=8usize);
                    t += exp_gap(&mut rng, mean_ns * 4.0);
                } else {
                    t += exp_gap(&mut rng, mean_ns / 5.0);
                }
                left_in_burst -= 1;
                out.push(t);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_monotone_and_reproducible() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            let a = arrival_times(kind, 10_000.0, 200, 7);
            let b = arrival_times(kind, 10_000.0, 200, 7);
            assert_eq!(a, b, "{} stream not reproducible", kind.name());
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "time went backwards");
            let c = arrival_times(kind, 10_000.0, 200, 8);
            assert_ne!(a, c, "different seeds should differ");
        }
    }

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let rate = 5_000.0; // mean gap 200_000 ns
        let a = arrival_times(ArrivalKind::Poisson, rate, 4_000, 42);
        let mean = *a.last().unwrap() as f64 / a.len() as f64;
        let want = 1e9 / rate;
        assert!(
            (mean - want).abs() / want < 0.15,
            "empirical mean gap {mean} too far from {want}"
        );
    }

    #[test]
    fn bursty_gaps_are_bimodal() {
        let a = arrival_times(ArrivalKind::Bursty, 10_000.0, 500, 1);
        let mean_ns = 1e9 / 10_000.0;
        let gaps: Vec<u64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        let short = gaps.iter().filter(|&&g| (g as f64) < mean_ns / 2.0).count();
        let long = gaps.iter().filter(|&&g| (g as f64) > mean_ns * 2.0).count();
        assert!(short > gaps.len() / 2, "expected mostly intra-burst gaps");
        assert!(long > gaps.len() / 20, "expected some long idle gaps");
    }

    #[test]
    fn names_round_trip() {
        for kind in [ArrivalKind::Poisson, ArrivalKind::Bursty] {
            assert_eq!(ArrivalKind::by_name(kind.name()), Some(kind));
        }
        assert_eq!(ArrivalKind::by_name("uniform"), None);
    }
}
