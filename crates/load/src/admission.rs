//! Admission control: per-tenant token-bucket quotas, deadline derivation,
//! typed shedding, the hysteretic brownout controller, and the calibrated
//! per-template cost model the feasibility bound uses.
//!
//! The serving rule this module enforces is *shed typed at the door, never
//! drop silently inside*: every query is either *admitted* — and then
//! guaranteed to be dispatched (admission is the only place a query can be
//! refused) — or *shed* with a [`ShedReason`] that names exactly which
//! gate refused it. The three gates, in evaluation order:
//!
//! 1. **Quota** — a per-tenant token bucket refilled in virtual time. A
//!    tenant above its sustained rate + burst allowance sheds
//!    [`ShedReason::QuotaExceeded`] without consuming server capacity,
//!    which is what keeps one tenant's overload from starving the others.
//! 2. **Queue depth** — a hard cap on total queued queries
//!    ([`ShedReason::QueueFull`]): bounded memory and bounded worst-case
//!    wait for everything already admitted.
//! 3. **Feasibility** — a provable completion-time lower bound against the
//!    query's deadline ([`ShedReason::DeadlineUnmeetable`]). The bound uses
//!    the calibrated clean-run service estimates (the engine's Eq. 4–7
//!    analytic timing made concrete per template and tier): the server is
//!    busy until `busy_until`, every queued same-tenant query with an
//!    earlier EDF key runs first, and faults only ever *lengthen* service —
//!    so `max(arrival, busy_until) + earlier_backlog + est > deadline`
//!    proves the deadline unmeetable before any work is wasted on it.
//!
//! Deadlines derive from the SLO objectives: `arrival + slack × p99`, so
//! operators tune one dimensionless knob and the per-algorithm objectives
//! keep doing the work.
//!
//! The [`BrownoutController`] is a three-tier hysteretic state machine
//! (full scan → streaming top-k with reduced k → CPU-fallback) driven by
//! queue depth and error-budget burn; see its docs for the exact rules.

use snp_core::CostScale;
use snp_gpu_model::DeviceSpec;

use crate::workload::{cpu_service_ns, run_query_tier, Template, WorkloadSet};

/// Why a query was refused at admission. Typed — shed queries surface in
/// records, reports, and metrics, never as silent drops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The tenant's token bucket was empty: the tenant is over its
    /// sustained rate plus burst allowance.
    QuotaExceeded,
    /// Admitting would exceed the queue-depth cap.
    QueueFull,
    /// The completion-time lower bound already exceeds the deadline.
    DeadlineUnmeetable,
}

impl ShedReason {
    /// Stable lowercase label (JSON, metrics, span args).
    pub fn label(self) -> &'static str {
        match self {
            ShedReason::QuotaExceeded => "quota_exceeded",
            ShedReason::QueueFull => "queue_full",
            ShedReason::DeadlineUnmeetable => "deadline_unmeetable",
        }
    }
}

/// Brownout service tiers, ordered from richest to cheapest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// The template's native path (full-γ readback for FastID full scans).
    Full,
    /// FastID readbacks routed through streaming top-k with reduced `k`.
    ReducedTopK,
    /// Service off-device at the modeled CPU baseline's speed — slower, but
    /// immune to device faults.
    CpuOnly,
}

impl Tier {
    /// Stable lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            Tier::Full => "full",
            Tier::ReducedTopK => "reduced_topk",
            Tier::CpuOnly => "cpu_only",
        }
    }

    /// One tier cheaper (saturates at [`Tier::CpuOnly`]).
    pub fn down(self) -> Tier {
        match self {
            Tier::Full => Tier::ReducedTopK,
            _ => Tier::CpuOnly,
        }
    }

    /// One tier richer (saturates at [`Tier::Full`]).
    pub fn up(self) -> Tier {
        match self {
            Tier::CpuOnly => Tier::ReducedTopK,
            _ => Tier::Full,
        }
    }
}

/// A token bucket refilled continuously in virtual time.
///
/// Capacity `burst` tokens; refill `rate_per_sec` tokens per virtual
/// second; one token per admitted query. Over any window `[t0, t1]` the
/// bucket admits at most `burst + rate × (t1 − t0)` queries — the bound the
/// property tests pin down.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_ns: u64,
}

impl TokenBucket {
    /// A full bucket. `rate_per_sec` and `burst` must be positive.
    pub fn new(rate_per_sec: f64, burst: f64) -> TokenBucket {
        assert!(rate_per_sec > 0.0 && burst > 0.0);
        TokenBucket {
            rate_per_sec,
            burst,
            tokens: burst,
            last_ns: 0,
        }
    }

    fn refill(&mut self, now_ns: u64) {
        let now_ns = now_ns.max(self.last_ns);
        let dt = (now_ns - self.last_ns) as f64 / 1e9;
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
        self.last_ns = now_ns;
    }

    /// Takes one token at virtual instant `now_ns`; `false` means the
    /// caller is over quota. `now_ns` must be non-decreasing across calls.
    pub fn try_take(&mut self, now_ns: u64) -> bool {
        self.refill(now_ns);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// Tokens available at `now_ns` (observational; does not take).
    pub fn available(&mut self, now_ns: u64) -> f64 {
        self.refill(now_ns);
        self.tokens
    }
}

/// One tenant's quota and scheduling weight.
#[derive(Debug, Clone)]
pub struct TenantQuota {
    /// Tenant label (matches `LoadConfig::tenants`).
    pub name: &'static str,
    /// Weighted-fair-queueing weight (service share relative to the sum).
    pub weight: f64,
    /// Sustained admission rate (queries per virtual second).
    pub rate_qps: f64,
    /// Burst allowance (token-bucket capacity, in queries).
    pub burst: f64,
}

/// Brownout hysteresis thresholds.
#[derive(Debug, Clone)]
pub struct BrownoutConfig {
    /// Queue depth at or above which pressure is counted.
    pub high_water: usize,
    /// Queue depth at or below which calm is counted.
    pub low_water: usize,
    /// Error budget the burn signal is computed against
    /// (`failed / (budget × completed)`).
    pub error_budget: f64,
    /// Burn at or above which pressure is counted even with a short queue.
    pub burn_high: f64,
    /// Consecutive observations on the same side required before a tier
    /// step — the hysteresis dwell that stops tier flapping.
    pub dwell: usize,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            high_water: 8,
            low_water: 2,
            error_budget: 0.02,
            burn_high: 1.0,
            dwell: 3,
        }
    }
}

/// One recorded tier change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierTransition {
    /// Virtual instant of the step.
    pub at_ns: u64,
    /// The tier stepped to.
    pub to: Tier,
}

/// The hysteretic brownout state machine.
///
/// Per observation (one per dispatch): queue depth ≥ `high_water` *or*
/// burn ≥ `burn_high` counts pressure; depth ≤ `low_water` *and* burn below
/// the threshold counts calm; anything in between resets both streaks.
/// `dwell` consecutive pressure observations step one tier **down**
/// (full → reduced top-k → CPU-only); `dwell` consecutive calm
/// observations step one tier **up**. Stepping resets both streaks, so a
/// recovery to [`Tier::Full`] from [`Tier::CpuOnly`] takes at least
/// `2 × dwell` calm observations — load must really have drained.
#[derive(Debug, Clone)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    tier: Tier,
    pressure: usize,
    calm: usize,
    transitions: Vec<TierTransition>,
}

impl BrownoutController {
    /// Starts at [`Tier::Full`].
    pub fn new(cfg: BrownoutConfig) -> BrownoutController {
        BrownoutController {
            cfg,
            tier: Tier::Full,
            pressure: 0,
            calm: 0,
            transitions: Vec::new(),
        }
    }

    /// The tier currently in force.
    pub fn tier(&self) -> Tier {
        self.tier
    }

    /// Every tier step taken so far, in order.
    pub fn transitions(&self) -> &[TierTransition] {
        &self.transitions
    }

    /// Burn signal: `failed / (error_budget × completed)`, 0 while nothing
    /// has completed.
    pub fn burn(&self, failed: usize, completed: usize) -> f64 {
        if completed == 0 || failed == 0 {
            return 0.0;
        }
        let allowed = self.cfg.error_budget * completed as f64;
        if allowed <= 0.0 {
            return f64::INFINITY;
        }
        failed as f64 / allowed
    }

    /// Feeds one observation; returns the (possibly new) tier in force.
    pub fn observe(&mut self, now_ns: u64, queue_depth: usize, burn: f64) -> Tier {
        let pressured = queue_depth >= self.cfg.high_water || burn >= self.cfg.burn_high;
        let calm = queue_depth <= self.cfg.low_water && burn < self.cfg.burn_high;
        if pressured {
            self.pressure += 1;
            self.calm = 0;
        } else if calm {
            self.calm += 1;
            self.pressure = 0;
        } else {
            self.pressure = 0;
            self.calm = 0;
        }
        if self.pressure >= self.cfg.dwell && self.tier != Tier::CpuOnly {
            self.tier = self.tier.down();
            self.pressure = 0;
            self.calm = 0;
            self.transitions.push(TierTransition {
                at_ns: now_ns,
                to: self.tier,
            });
        } else if self.calm >= self.cfg.dwell && self.tier != Tier::Full {
            self.tier = self.tier.up();
            self.pressure = 0;
            self.calm = 0;
            self.transitions.push(TierTransition {
                at_ns: now_ns,
                to: self.tier,
            });
        }
        self.tier
    }
}

/// Everything that parameterizes the admission layer. `enabled: false`
/// (the default in `LoadConfig::new`) reproduces the PR 7 FIFO server
/// byte-for-byte: no quotas, no deadlines, no shedding, no brownout.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Master switch (`snpgpu loadgen --admission`).
    pub enabled: bool,
    /// Per-tenant quotas and weights. Tenants in the stream without an
    /// entry get [`AdmissionConfig::DEFAULT_TENANT_RATE`] at weight 1.
    pub quotas: Vec<TenantQuota>,
    /// Deadline = arrival + `deadline_slack` × (the template's SLO p99).
    pub deadline_slack: f64,
    /// Shed fraction above which the run exits `SHED_BUDGET_EXCEEDED` (7).
    pub shed_budget: f64,
    /// Hard cap on queued (admitted, not yet dispatched) queries.
    pub queue_cap: usize,
    /// Brownout thresholds.
    pub brownout: BrownoutConfig,
    /// Consecutive sheds that count as a shed storm and dump the flight
    /// recorder.
    pub storm_run: usize,
}

impl AdmissionConfig {
    /// Sustained per-tenant admission rate when no quota names the tenant.
    pub const DEFAULT_TENANT_RATE: f64 = 2_000.0;
    /// Burst allowance when no quota names the tenant.
    pub const DEFAULT_TENANT_BURST: f64 = 8.0;

    /// Admission off: the legacy FIFO server semantics.
    pub fn disabled() -> AdmissionConfig {
        AdmissionConfig {
            enabled: false,
            ..AdmissionConfig::standard()
        }
    }

    /// Admission on with the documented defaults.
    pub fn standard() -> AdmissionConfig {
        AdmissionConfig {
            enabled: true,
            quotas: Vec::new(),
            deadline_slack: 4.0,
            shed_budget: 0.5,
            queue_cap: 64,
            brownout: BrownoutConfig::default(),
            storm_run: 8,
        }
    }

    /// The quota for `tenant`, falling back to the defaults.
    pub fn quota_for(&self, tenant: &str) -> TenantQuota {
        self.quotas
            .iter()
            .find(|q| q.name == tenant)
            .cloned()
            .unwrap_or(TenantQuota {
                name: "",
                weight: 1.0,
                rate_qps: Self::DEFAULT_TENANT_RATE,
                burst: Self::DEFAULT_TENANT_BURST,
            })
    }
}

/// Calibrated clean-run service estimates per `(template, tier)` — the
/// Eq. 4–7 analytic cost model made concrete for the feasibility bound and
/// the corruption oracle.
///
/// Absent faults the engine's modeled service time for a template is
/// deterministic, so one clean run per cell *is* the model evaluation;
/// faults only add retry/fallback time on top. That makes each estimate a
/// certified **lower bound** on real service time, which is exactly what a
/// provable shed decision needs. The same clean runs pin the expected
/// result digest per cell for the silent-corruption check.
#[derive(Debug, Clone)]
pub struct CostModel {
    entries: Vec<(Template, Tier, u64, u64)>,
}

/// The templates a cost model covers, in calibration order.
const ALL_TEMPLATES: [Template; 4] = [
    Template::Ld,
    Template::FastId,
    Template::FastIdTopK,
    Template::Mixture,
];

impl CostModel {
    /// Runs each `(template, tier)` cell once, clean, against `device`.
    /// Calibration runs under `cost_scale` so that feasibility estimates
    /// and corruption digests stay consistent with what-if replays whose
    /// engine runs are scaled the same way.
    pub fn calibrate(device: &DeviceSpec, set: &WorkloadSet, cost_scale: CostScale) -> CostModel {
        use snp_core::{EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
        let engine = GpuEngine::new(device.clone()).with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            cost_scale,
            ..Default::default()
        });
        let mut entries = Vec::new();
        for template in ALL_TEMPLATES {
            for tier in [Tier::Full, Tier::ReducedTopK] {
                let sr = run_query_tier(template, &engine, set, tier)
                    .expect("clean calibration run cannot fault");
                entries.push((template, tier, sr.service_ns, sr.digest));
            }
            entries.push((template, Tier::CpuOnly, cpu_service_ns(template, set), 0));
        }
        CostModel { entries }
    }

    fn cell(&self, template: Template, tier: Tier) -> (u64, u64) {
        self.entries
            .iter()
            .find(|(t, ti, _, _)| *t == template && *ti == tier)
            .map(|(_, _, ns, digest)| (*ns, *digest))
            .expect("cost model covers every (template, tier)")
    }

    /// The calibrated clean service time of this cell (virtual ns).
    pub fn estimate_ns(&self, template: Template, tier: Tier) -> u64 {
        self.cell(template, tier).0
    }

    /// The expected result digest of this cell (0 for cells without an
    /// engine result — nothing to corrupt).
    pub fn expected_digest(&self, template: Template, tier: Tier) -> u64 {
        self.cell(template, tier).1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_rate_plus_burst() {
        let mut b = TokenBucket::new(1_000.0, 4.0);
        // Burst drains instantly…
        let taken = (0..10).filter(|_| b.try_take(0)).count();
        assert_eq!(taken, 4);
        // …then refills at the sustained rate: 1 ms → 1 token.
        assert!(!b.try_take(500_000));
        assert!(b.try_take(1_000_000));
        assert!(!b.try_take(1_000_001));
        // Refill never exceeds the burst cap.
        assert!((b.available(10_000_000_000) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn brownout_steps_down_and_recovers_with_hysteresis() {
        let cfg = BrownoutConfig {
            dwell: 2,
            ..BrownoutConfig::default()
        };
        let mut bc = BrownoutController::new(cfg);
        assert_eq!(
            bc.observe(0, 20, 0.0),
            Tier::Full,
            "one observation is not enough"
        );
        assert_eq!(bc.observe(1, 20, 0.0), Tier::ReducedTopK);
        assert_eq!(bc.observe(2, 20, 0.0), Tier::ReducedTopK);
        assert_eq!(bc.observe(3, 20, 0.0), Tier::CpuOnly);
        // Saturates at the bottom.
        bc.observe(4, 20, 0.0);
        bc.observe(5, 20, 0.0);
        assert_eq!(bc.tier(), Tier::CpuOnly);
        // Mid-band observations reset streaks and hold the tier.
        assert_eq!(bc.observe(6, 5, 0.0), Tier::CpuOnly);
        // Calm observations recover one tier per dwell.
        assert_eq!(bc.observe(7, 0, 0.0), Tier::CpuOnly);
        assert_eq!(bc.observe(8, 0, 0.0), Tier::ReducedTopK);
        assert_eq!(bc.observe(9, 0, 0.0), Tier::ReducedTopK);
        assert_eq!(bc.observe(10, 0, 0.0), Tier::Full);
        assert_eq!(bc.transitions().len(), 4);
    }

    #[test]
    fn brownout_burn_alone_trips_pressure() {
        let mut bc = BrownoutController::new(BrownoutConfig {
            dwell: 1,
            ..BrownoutConfig::default()
        });
        let burn = bc.burn(3, 10); // 3/(0.02×10) = 15
        assert!(burn > 1.0);
        assert_eq!(bc.observe(0, 0, burn), Tier::ReducedTopK);
        assert_eq!(bc.burn(0, 10), 0.0);
    }

    #[test]
    fn cost_model_estimates_are_positive_and_cpu_tier_is_slowest_free_path() {
        let set = WorkloadSet::build(42);
        let model = CostModel::calibrate(
            &snp_gpu_model::devices::titan_v(),
            &set,
            CostScale::default(),
        );
        for template in ALL_TEMPLATES {
            for tier in [Tier::Full, Tier::ReducedTopK, Tier::CpuOnly] {
                assert!(
                    model.estimate_ns(template, tier) > 0,
                    "{template:?}/{tier:?}"
                );
            }
            // Engine tiers carry a result digest; the CPU tier has none.
            assert_ne!(model.expected_digest(template, Tier::Full), 0);
            assert_eq!(model.expected_digest(template, Tier::CpuOnly), 0);
        }
        // Reduced k reads back no more than the native k on the same
        // streaming path. (Full-γ vs top-k is *not* ordered at this small
        // modeled shape — the streaming machinery has its own cost.)
        assert!(
            model.estimate_ns(Template::FastIdTopK, Tier::ReducedTopK)
                <= model.estimate_ns(Template::FastIdTopK, Tier::Full)
        );
    }
}
