//! Report rendering: the `slo-report.json` machine format and the human
//! text table.
//!
//! The JSON is written by hand (the workspace is offline — no serde) with
//! a fixed key order and fixed-precision floats, so a seeded run renders
//! byte-identically everywhere: CI diffs the artifact, and
//! `examples/check_bench.rs` gates the percentile entries against the
//! committed baseline.

use std::fmt::Write as _;

use crate::runner::{AdmissionReport, LoadReport, SweepReport};
use crate::slo::SloOutcome;

fn escape(s: &str) -> String {
    let mut out = String::new();
    snp_trace::json::escape_into(&mut out, s);
    out
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", escape(s)),
        None => "null".to_string(),
    }
}

fn slo_json(o: &SloOutcome) -> String {
    let reasons: Vec<String> = o
        .reasons
        .iter()
        .map(|r| format!("\"{}\"", escape(r)))
        .collect();
    format!(
        concat!(
            "{{\"algorithm\":\"{alg}\",\"count\":{count},",
            "\"p50_ns\":{p50},\"p95_ns\":{p95},\"p99_ns\":{p99},\"max_ns\":{max},",
            "\"mean_ns\":{mean:.1},\"queue_wait_p99_ns\":{qw},\"failed\":{failed},",
            "\"objective\":{{\"p50_ns\":{op50},\"p99_ns\":{op99},\"error_budget\":{budget:.6}}},",
            "\"budget_burn\":{burn:.6},\"breached\":{breached},\"reasons\":[{reasons}]}}"
        ),
        alg = o.algorithm,
        count = o.count,
        p50 = o.p50_ns,
        p95 = o.p95_ns,
        p99 = o.p99_ns,
        max = o.max_ns,
        mean = o.mean_ns,
        qw = o.queue_wait_p99_ns,
        failed = o.failed,
        op50 = o.objective.p50_ns,
        op99 = o.objective.p99_ns,
        budget = o.objective.error_budget,
        burn = o.budget_burn,
        breached = o.breached,
        reasons = reasons.join(","),
    )
}

fn admission_json(a: &AdmissionReport) -> String {
    let ratio = if a.tenant_goodput_ratio.is_finite() {
        format!("{:.3}", a.tenant_goodput_ratio)
    } else {
        "null".to_string()
    };
    let transitions: Vec<String> = a
        .transitions
        .iter()
        .map(|t| format!("{{\"at_ns\":{},\"to\":\"{}\"}}", t.at_ns, t.to.label()))
        .collect();
    let tenants: Vec<String> = a
        .tenants
        .iter()
        .map(|t| {
            format!(
                concat!(
                    "{{\"name\":\"{name}\",\"weight\":{weight:.3},\"offered\":{offered},",
                    "\"admitted\":{admitted},\"shed\":{shed},\"completed\":{completed},",
                    "\"goodput\":{goodput}}}"
                ),
                name = escape(t.name),
                weight = t.weight,
                offered = t.offered,
                admitted = t.admitted,
                shed = t.shed,
                completed = t.completed,
                goodput = t.goodput,
            )
        })
        .collect();
    format!(
        concat!(
            "{{\"offered\":{offered},\"admitted\":{admitted},",
            "\"shed\":{{\"quota_exceeded\":{quota},\"queue_full\":{qfull},",
            "\"deadline_unmeetable\":{dline},\"total\":{total}}},",
            "\"shed_fraction\":{frac:.6},\"shed_budget_exceeded\":{over},",
            "\"goodput\":{goodput},\"goodput_qps\":{gqps:.3},",
            "\"tenant_goodput_ratio\":{ratio},\"corruptions\":{corr},",
            "\"final_tier\":\"{tier}\",\"transitions\":[{transitions}],",
            "\"tenants\":[{tenants}]}}"
        ),
        offered = a.offered,
        admitted = a.admitted,
        quota = a.shed_quota,
        qfull = a.shed_queue_full,
        dline = a.shed_deadline,
        total = a.shed_quota + a.shed_queue_full + a.shed_deadline,
        frac = a.shed_fraction,
        over = a.shed_budget_exceeded,
        goodput = a.goodput,
        gqps = a.goodput_qps,
        ratio = ratio,
        corr = a.corruptions,
        tier = a.final_tier.label(),
        transitions = transitions.join(","),
        tenants = tenants.join(","),
    )
}

impl LoadReport {
    /// The `slo-report.json` document for a single run. Deterministic for
    /// a fixed config: no wall-clock content, fixed-precision floats.
    pub fn to_json(&self) -> String {
        let algorithms: Vec<String> = self.slo.iter().map(slo_json).collect();
        let admission = match &self.admission {
            Some(a) => admission_json(a),
            None => "null".to_string(),
        };
        let anatomy = match &self.anatomy {
            Some(a) => a.to_json(),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"schema_version\":3,\"tool\":\"snpgpu loadgen\",",
                "\"device\":\"{device}\",\"seed\":{seed},\"arrival\":\"{arrival}\",",
                "\"rate_qps\":{rate:.3},\"queries\":{queries},",
                "\"fault_profile\":{fault},",
                "\"duration_virtual_ns\":{dur},\"achieved_qps\":{aqps:.3},",
                "\"overall\":{{\"p50_ns\":{p50},\"p99_ns\":{p99}}},",
                "\"outcomes\":{{\"clean\":{clean},\"recovered\":{rec},\"degraded\":{deg},",
                "\"fault\":{fault_n},\"error\":{err},\"shed\":{shed}}},",
                "\"admission\":{admission},",
                "\"anatomy\":{anatomy},",
                "\"flight_dropped_spans\":{dropped},",
                "\"algorithms\":[{algorithms}],",
                "\"slo_breached\":{breached},",
                "\"postmortem_reason\":{pm}}}\n"
            ),
            device = escape(&self.device),
            seed = self.seed,
            arrival = self.arrival.name(),
            rate = self.rate_qps,
            queries = self.records.len(),
            fault = opt_str(&self.fault_profile),
            dur = self.duration_ns,
            aqps = self.achieved_qps,
            p50 = self.p50_all_ns,
            p99 = self.p99_all_ns,
            clean = self.outcomes.clean,
            rec = self.outcomes.recovered,
            deg = self.outcomes.degraded,
            fault_n = self.outcomes.fault,
            err = self.outcomes.error,
            shed = self.outcomes.shed,
            admission = admission,
            anatomy = anatomy,
            dropped = self.flight_dropped_spans,
            algorithms = algorithms.join(","),
            breached = self.breached,
            pm = opt_str(&self.postmortem.as_ref().map(|p| p.reason.clone())),
        )
    }

    /// The human-readable run report.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "loadgen: {} queries on {} at {:.0} q/s ({} arrivals, seed {})",
            self.records.len(),
            self.device,
            self.rate_qps,
            self.arrival.name(),
            self.seed
        );
        if let Some(p) = &self.fault_profile {
            let _ = writeln!(out, "fault injection: profile {p}");
        }
        let _ = writeln!(
            out,
            "makespan {:.3} ms virtual, achieved {:.0} q/s, overall p50 {:.3} ms p99 {:.3} ms",
            self.duration_ns as f64 / 1e6,
            self.achieved_qps,
            self.p50_all_ns as f64 / 1e6,
            self.p99_all_ns as f64 / 1e6
        );
        let _ = writeln!(
            out,
            "outcomes: {} clean, {} recovered, {} degraded, {} fault, {} error, {} shed",
            self.outcomes.clean,
            self.outcomes.recovered,
            self.outcomes.degraded,
            self.outcomes.fault,
            self.outcomes.error,
            self.outcomes.shed
        );
        if let Some(a) = &self.admission {
            let _ = writeln!(
                out,
                "admission: {} offered, {} admitted, {} shed ({:.1}%){} [quota {}, queue {}, deadline {}]",
                a.offered,
                a.admitted,
                a.offered - a.admitted,
                a.shed_fraction * 100.0,
                if a.shed_budget_exceeded {
                    " OVER BUDGET"
                } else {
                    ""
                },
                a.shed_quota,
                a.shed_queue_full,
                a.shed_deadline
            );
            for t in &a.tenants {
                let _ = writeln!(
                    out,
                    "  tenant {:<10} weight {:.1}: offered {:>3} admitted {:>3} shed {:>3} goodput {:>3}",
                    t.name, t.weight, t.offered, t.admitted, t.shed, t.goodput
                );
            }
            let ratio = if a.tenant_goodput_ratio.is_finite() {
                format!("{:.2}", a.tenant_goodput_ratio)
            } else {
                "inf (starved tenant)".to_string()
            };
            let _ = writeln!(
                out,
                "goodput {} ({:.0} q/s), tenant goodput ratio {}, corruptions {}",
                a.goodput, a.goodput_qps, ratio, a.corruptions
            );
            let _ = writeln!(
                out,
                "brownout: final tier {}, {} transition(s)",
                a.final_tier.label(),
                a.transitions.len()
            );
        }
        if self.flight_dropped_spans > 0 {
            let _ = writeln!(
                out,
                "flight recorder dropped {} span(s) (raise --flight-capacity to keep more)",
                self.flight_dropped_spans
            );
        }
        let _ = writeln!(
            out,
            "{:<9} {:>6} {:>10} {:>10} {:>10} {:>10} {:>7} {:>6}  slo",
            "algorithm", "count", "p50 ms", "p95 ms", "p99 ms", "wait p99", "failed", "burn"
        );
        for o in &self.slo {
            let _ = writeln!(
                out,
                "{:<9} {:>6} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>7} {:>6.2}  {}",
                o.algorithm,
                o.count,
                o.p50_ns as f64 / 1e6,
                o.p95_ns as f64 / 1e6,
                o.p99_ns as f64 / 1e6,
                o.queue_wait_p99_ns as f64 / 1e6,
                o.failed,
                o.budget_burn,
                if o.breached { "BREACH" } else { "ok" }
            );
            for r in &o.reasons {
                let _ = writeln!(out, "          ! {r}");
            }
        }
        if let Some(anatomy) = &self.anatomy {
            out.push_str(&anatomy.render_text());
        }
        if let Some(pm) = &self.postmortem {
            let _ = writeln!(out, "flight recorder dumped: {}", pm.reason);
        }
        out
    }
}

impl SweepReport {
    /// The `slo-report.json` document for a sweep: per-point run reports
    /// (each with per-algorithm percentiles) plus the detected knee.
    pub fn to_json(&self) -> String {
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                let mut run_json = p.report.to_json();
                // Embed without the trailing newline a bare run emits.
                run_json.truncate(run_json.trim_end().len());
                format!(
                    "{{\"rate_qps\":{:.3},\"goodput_qps\":{:.3},\"report\":{}}}",
                    p.rate_qps,
                    p.goodput_qps(),
                    run_json
                )
            })
            .collect();
        let knee = match self.knee {
            Some(i) => format!("{:.3}", self.points[i].rate_qps),
            None => "null".to_string(),
        };
        let retention = match self.goodput_retention() {
            Some(r) => format!("{r:.6}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"schema_version\":1,\"tool\":\"snpgpu loadgen --sweep\",",
                "\"knee_rate_qps\":{knee},\"goodput_retention\":{retention},",
                "\"points\":[{points}]}}\n"
            ),
            knee = knee,
            retention = retention,
            points = points.join(","),
        )
    }

    /// The human-readable sweep table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "saturation sweep: {} offered-load points",
            self.points.len()
        );
        let _ = writeln!(
            out,
            "{:>12} {:>12} {:>12} {:>8} {:>10} {:>10} {:>10} {:>7}  slo",
            "offered q/s",
            "achieved q/s",
            "goodput q/s",
            "shed %",
            "p50 ms",
            "p99 ms",
            "wait p99",
            "failed"
        );
        for (i, p) in self.points.iter().enumerate() {
            let r = &p.report;
            let failed: usize = r.slo.iter().map(|o| o.failed).sum();
            let wait_p99 = r.slo.iter().map(|o| o.queue_wait_p99_ns).max().unwrap_or(0);
            let shed_pct = r
                .admission
                .as_ref()
                .map_or(0.0, |a| a.shed_fraction * 100.0);
            let _ = writeln!(
                out,
                "{:>12.0} {:>12.0} {:>12.0} {:>8.1} {:>10.3} {:>10.3} {:>10.3} {:>7}  {}{}",
                p.rate_qps,
                r.achieved_qps,
                p.goodput_qps(),
                shed_pct,
                r.p50_all_ns as f64 / 1e6,
                r.p99_all_ns as f64 / 1e6,
                wait_p99 as f64 / 1e6,
                failed,
                if r.breached { "BREACH" } else { "ok" },
                if self.knee == Some(i) {
                    "  <- knee"
                } else {
                    ""
                }
            );
        }
        if let Some(r) = self.goodput_retention() {
            let _ = writeln!(
                out,
                "goodput past the knee stays within {:.1}% of the knee point",
                (1.0 - r) * 100.0
            );
        }
        match self.knee {
            Some(i) => {
                let _ = writeln!(
                    out,
                    "saturation knee at ~{:.0} q/s offered (p99 >= 2x the lightest point)",
                    self.points[i].rate_qps
                );
            }
            None => {
                let _ = writeln!(out, "no saturation knee within the swept range");
            }
        }
        out
    }

    /// Whether any point breached its SLO.
    pub fn breached(&self) -> bool {
        self.points.iter().any(|p| p.report.breached)
    }
}

#[cfg(test)]
mod tests {
    use crate::runner::{run, saturation_sweep, LoadConfig};
    use crate::workload::Template;
    use snp_gpu_model::devices;

    fn cfg() -> LoadConfig {
        let mut cfg = LoadConfig::new(devices::titan_v(), vec![Template::Ld, Template::FastId]);
        cfg.queries = 12;
        cfg.record_timeline = false;
        cfg
    }

    #[test]
    fn json_is_byte_reproducible_and_parses() {
        let a = run(&cfg()).to_json();
        let b = run(&cfg()).to_json();
        assert_eq!(a, b, "seeded run JSON must be byte-identical");
        let doc = snp_trace::json::parse(&a).expect("valid JSON");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["schema_version"].as_num(), Some(3.0));
        assert!(obj.contains_key("anatomy"), "schema v3 carries anatomy");
        assert!(
            obj["anatomy"].as_obj().is_none(),
            "anatomy renders null when not requested"
        );
        let algs = obj["algorithms"].as_arr().unwrap();
        assert!(!algs.is_empty());
        for a in algs {
            let o = a.as_obj().unwrap();
            for key in ["p50_ns", "p95_ns", "p99_ns"] {
                assert!(o[key].as_num().is_some(), "missing {key}");
            }
        }
    }

    #[test]
    fn sweep_json_parses_and_embeds_points() {
        let sweep = saturation_sweep(&cfg(), &[1.0, 2.0]);
        let json = sweep.to_json();
        let doc = snp_trace::json::parse(&json).expect("valid JSON");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["points"].as_arr().unwrap().len(), 2);
    }

    #[test]
    fn admission_block_renders_in_json_and_text() {
        use crate::admission::AdmissionConfig;
        use crate::arrival::ArrivalKind;
        let mut c = cfg();
        c.queries = 32;
        c.rate_qps = 100_000.0;
        c.arrival = ArrivalKind::Bursty;
        c.admission = AdmissionConfig::standard();
        let r = run(&c);
        let json = r.to_json();
        let doc = snp_trace::json::parse(&json).expect("valid JSON");
        let adm = doc.as_obj().unwrap()["admission"].as_obj().unwrap();
        assert_eq!(adm["offered"].as_num(), Some(32.0));
        let shed = adm["shed"].as_obj().unwrap();
        assert!(shed["total"].as_num().is_some());
        assert!(adm["final_tier"].as_str().is_some());
        let text = r.render_text();
        assert!(text.contains("admission:"), "{text}");
        assert!(text.contains("tenant casework"), "{text}");
        assert!(text.contains("brownout:"), "{text}");
    }

    #[test]
    fn anatomy_block_renders_in_json_and_text() {
        let mut c = cfg();
        c.anatomy = true;
        let r = run(&c);
        let json = r.to_json();
        let doc = snp_trace::json::parse(&json).expect("valid JSON");
        let anatomy = doc.as_obj().unwrap()["anatomy"].as_obj().unwrap();
        assert_eq!(anatomy["bands"].as_arr().unwrap().len(), 4);
        assert!(anatomy["attributed_fraction"].as_num().unwrap() >= 0.95);
        let text = r.render_text();
        assert!(text.contains("latency anatomy"), "{text}");
        assert!(text.contains("sched_queue"), "{text}");
    }

    #[test]
    fn text_reports_render() {
        let r = run(&cfg());
        let text = r.render_text();
        assert!(text.contains("loadgen:"));
        assert!(text.contains("ld"));
        let sweep = saturation_sweep(&cfg(), &[1.0]);
        assert!(sweep.render_text().contains("saturation sweep"));
    }
}
