//! Query templates and the shared synthetic data sets they run against.
//!
//! A template is one *kind* of query the generator can pose: an LD scan
//! over a panel, a FastID identity search (full-γ or streaming top-k
//! readback), or a mixture deconvolution. The backing matrices are built
//! once per run from the seed; individual queries then re-run the engine
//! against them, so per-query cost is the engine's modeled service time,
//! not data-generation time.

use snp_bitmat::BitMatrix;
use snp_core::{Algorithm, EngineError, GpuEngine, RecoverySummary, Timing};
use snp_popgen::forensic::{
    generate_database, generate_mixtures, generate_queries, DatabaseConfig,
};
use snp_popgen::population::{generate_panel, PanelConfig};

/// One query kind. `FastIdTopK` shares the `fastid` algorithm slug with
/// `FastId` — it is the same search routed through the streaming top-k
/// readback path instead of the full-γ readback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// LD self-comparison over the panel (Eq. 1).
    Ld,
    /// FastID identity search, full-γ readback (Eq. 2).
    FastId,
    /// FastID identity search through the streaming top-k path.
    FastIdTopK,
    /// FastID mixture analysis (Eq. 3).
    Mixture,
}

impl Template {
    /// The algorithm slug latency is aggregated under (`ld`, `fastid`,
    /// `mixture` — matching `snpgpu`'s algorithm names).
    pub fn slug(self) -> &'static str {
        match self {
            Template::Ld => "ld",
            Template::FastId | Template::FastIdTopK => "fastid",
            Template::Mixture => "mixture",
        }
    }

    /// The engine algorithm this template exercises.
    pub fn algorithm(self) -> Algorithm {
        match self {
            Template::Ld => Algorithm::LinkageDisequilibrium,
            Template::FastId | Template::FastIdTopK => Algorithm::IdentitySearch,
            Template::Mixture => Algorithm::MixtureAnalysis,
        }
    }
}

/// Maps a `snpgpu` algorithm selection to the templates it enables.
pub fn templates_for(algorithms: &[Algorithm]) -> Vec<Template> {
    let mut out = Vec::new();
    for &alg in algorithms {
        match alg {
            Algorithm::LinkageDisequilibrium => out.push(Template::Ld),
            Algorithm::IdentitySearch => {
                out.push(Template::FastId);
                out.push(Template::FastIdTopK);
            }
            Algorithm::MixtureAnalysis => out.push(Template::Mixture),
        }
    }
    out
}

/// The matrices every query in a run draws on. Shapes are deliberately
/// small: queries execute in `ExecMode::Full` (so faults, checksums, and
/// recovery all really happen) and a load test runs hundreds of them.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    panel: BitMatrix<u64>,
    fastid_queries: BitMatrix<u64>,
    fastid_db: BitMatrix<u64>,
    mixture_refs: BitMatrix<u64>,
    mixture_matrix: BitMatrix<u64>,
    /// Candidates kept per query on the top-k path.
    pub topk: usize,
}

impl WorkloadSet {
    /// Builds the shared data sets from `seed`.
    pub fn build(seed: u64) -> WorkloadSet {
        let panel = generate_panel(
            &PanelConfig {
                snps: 48,
                samples: 256,
                ..Default::default()
            },
            seed,
        );
        let db = generate_database(
            &DatabaseConfig {
                profiles: 600,
                snps: 192,
                ..Default::default()
            },
            seed + 1,
        );
        let qs = generate_queries(&db, 4, 2, 0.01, seed + 2);
        let mix_db = generate_database(
            &DatabaseConfig {
                profiles: 300,
                snps: 192,
                ..Default::default()
            },
            seed + 3,
        );
        let (_mixtures, mixture_matrix) = generate_mixtures(&mix_db, 1, 2, seed + 4);
        WorkloadSet {
            panel: panel.matrix,
            fastid_queries: qs.queries,
            fastid_db: db.profiles,
            mixture_refs: mix_db.profiles,
            mixture_matrix,
            topk: 5,
        }
    }
}

/// What one serviced query cost and what recovery did for it.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Modeled post-init service time (virtual ns) of the engine run.
    pub service_ns: u64,
    /// Kernel launches.
    pub passes: usize,
    /// Recovery summary when the query ran the recovering path.
    pub recovery: Option<RecoverySummary>,
}

fn service(timing: &Timing, passes: usize, recovery: Option<RecoverySummary>) -> ServiceReport {
    // A serving deployment opens its device once, so one-time runtime
    // initialization is not charged to individual queries: service time is
    // the post-init window (packing, transfers, kernels, recovery).
    ServiceReport {
        service_ns: timing.busy_ns(),
        passes,
        recovery,
    }
}

/// Runs one query of this template on `engine` against `set`.
pub fn run_query(
    template: Template,
    engine: &GpuEngine,
    set: &WorkloadSet,
) -> Result<ServiceReport, EngineError> {
    match template {
        Template::Ld => {
            let r = engine.ld_self(&set.panel)?;
            Ok(service(&r.timing, r.passes, r.recovery))
        }
        Template::FastId => {
            let r = engine.identity_search(&set.fastid_queries, &set.fastid_db)?;
            Ok(service(&r.timing, r.passes, r.recovery))
        }
        Template::FastIdTopK => {
            let r = engine.identity_search_topk(&set.fastid_queries, &set.fastid_db, set.topk)?;
            Ok(service(&r.timing, r.passes, r.recovery))
        }
        Template::Mixture => {
            let r = engine.mixture_analysis(&set.mixture_refs, &set.mixture_matrix)?;
            Ok(service(&r.timing, r.passes, r.recovery))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_core::{EngineOptions, ExecMode, MixtureStrategy};
    use snp_gpu_model::devices;

    #[test]
    fn every_template_services_in_full_mode() {
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev).with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        });
        let set = WorkloadSet::build(42);
        for t in [
            Template::Ld,
            Template::FastId,
            Template::FastIdTopK,
            Template::Mixture,
        ] {
            let r = run_query(t, &engine, &set).expect("clean run");
            assert!(r.service_ns > 0, "{:?} reported zero service time", t);
            assert!(r.passes >= 1);
            assert!(r.recovery.is_none(), "no fault plan → fast path");
        }
    }

    #[test]
    fn service_time_is_deterministic() {
        let set = WorkloadSet::build(42);
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev).with_options(EngineOptions {
            mode: ExecMode::Full,
            ..Default::default()
        });
        let a = run_query(Template::FastIdTopK, &engine, &set).unwrap();
        let b = run_query(Template::FastIdTopK, &engine, &set).unwrap();
        assert_eq!(a.service_ns, b.service_ns);
    }

    #[test]
    fn selection_expands_fastid_into_both_readback_paths() {
        let ts = templates_for(&[Algorithm::IdentitySearch]);
        assert_eq!(ts, vec![Template::FastId, Template::FastIdTopK]);
        assert!(ts.iter().all(|t| t.slug() == "fastid"));
    }
}
