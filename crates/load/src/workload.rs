//! Query templates and the shared synthetic data sets they run against.
//!
//! A template is one *kind* of query the generator can pose: an LD scan
//! over a panel, a FastID identity search (full-γ or streaming top-k
//! readback), or a mixture deconvolution. The backing matrices are built
//! once per run from the seed; individual queries then re-run the engine
//! against them, so per-query cost is the engine's modeled service time,
//! not data-generation time.

use snp_bitmat::{BitMatrix, CountMatrix};
use snp_core::{
    compare_op, word_op_kind, Algorithm, CpuModel, EngineError, GpuEngine, Match, MixtureStrategy,
    RecoverySummary, Timing,
};
use snp_popgen::forensic::{
    generate_database, generate_mixtures, generate_queries, DatabaseConfig,
};
use snp_popgen::population::{generate_panel, PanelConfig};

use crate::admission::Tier;

/// One query kind. `FastIdTopK` shares the `fastid` algorithm slug with
/// `FastId` — it is the same search routed through the streaming top-k
/// readback path instead of the full-γ readback.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Template {
    /// LD self-comparison over the panel (Eq. 1).
    Ld,
    /// FastID identity search, full-γ readback (Eq. 2).
    FastId,
    /// FastID identity search through the streaming top-k path.
    FastIdTopK,
    /// FastID mixture analysis (Eq. 3).
    Mixture,
}

impl Template {
    /// The algorithm slug latency is aggregated under (`ld`, `fastid`,
    /// `mixture` — matching `snpgpu`'s algorithm names).
    pub fn slug(self) -> &'static str {
        match self {
            Template::Ld => "ld",
            Template::FastId | Template::FastIdTopK => "fastid",
            Template::Mixture => "mixture",
        }
    }

    /// The engine algorithm this template exercises.
    pub fn algorithm(self) -> Algorithm {
        match self {
            Template::Ld => Algorithm::LinkageDisequilibrium,
            Template::FastId | Template::FastIdTopK => Algorithm::IdentitySearch,
            Template::Mixture => Algorithm::MixtureAnalysis,
        }
    }
}

/// Maps a `snpgpu` algorithm selection to the templates it enables.
pub fn templates_for(algorithms: &[Algorithm]) -> Vec<Template> {
    let mut out = Vec::new();
    for &alg in algorithms {
        match alg {
            Algorithm::LinkageDisequilibrium => out.push(Template::Ld),
            Algorithm::IdentitySearch => {
                out.push(Template::FastId);
                out.push(Template::FastIdTopK);
            }
            Algorithm::MixtureAnalysis => out.push(Template::Mixture),
        }
    }
    out
}

/// The matrices every query in a run draws on. Shapes are deliberately
/// small: queries execute in `ExecMode::Full` (so faults, checksums, and
/// recovery all really happen) and a load test runs hundreds of them.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    panel: BitMatrix<u64>,
    fastid_queries: BitMatrix<u64>,
    fastid_db: BitMatrix<u64>,
    mixture_refs: BitMatrix<u64>,
    mixture_matrix: BitMatrix<u64>,
    /// Candidates kept per query on the top-k path.
    pub topk: usize,
}

impl WorkloadSet {
    /// Builds the shared data sets from `seed`.
    pub fn build(seed: u64) -> WorkloadSet {
        let panel = generate_panel(
            &PanelConfig {
                snps: 48,
                samples: 256,
                ..Default::default()
            },
            seed,
        );
        let db = generate_database(
            &DatabaseConfig {
                profiles: 600,
                snps: 192,
                ..Default::default()
            },
            seed + 1,
        );
        let qs = generate_queries(&db, 4, 2, 0.01, seed + 2);
        let mix_db = generate_database(
            &DatabaseConfig {
                profiles: 300,
                snps: 192,
                ..Default::default()
            },
            seed + 3,
        );
        let (_mixtures, mixture_matrix) = generate_mixtures(&mix_db, 1, 2, seed + 4);
        WorkloadSet {
            panel: panel.matrix,
            fastid_queries: qs.queries,
            fastid_db: db.profiles,
            mixture_refs: mix_db.profiles,
            mixture_matrix,
            topk: 5,
        }
    }
}

/// What one serviced query cost and what recovery did for it.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Modeled post-init service time (virtual ns) of the engine run.
    pub service_ns: u64,
    /// Kernel launches.
    pub passes: usize,
    /// Recovery summary when the query ran the recovering path.
    pub recovery: Option<RecoverySummary>,
    /// Order-independent FNV digest of the query's result (γ counts or
    /// top-k match lists). Two runs of the same `(template, tier)` against
    /// the same [`WorkloadSet`] must agree — a mismatch against the clean
    /// calibration run is a silent corruption.
    pub digest: u64,
}

fn service(
    timing: &Timing,
    passes: usize,
    recovery: Option<RecoverySummary>,
    digest: u64,
) -> ServiceReport {
    // A serving deployment opens its device once, so one-time runtime
    // initialization is not charged to individual queries: service time is
    // the post-init window (packing, transfers, kernels, recovery).
    ServiceReport {
        service_ns: timing.busy_ns(),
        passes,
        recovery,
        digest,
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, v: u64) -> u64 {
    (h ^ v).wrapping_mul(FNV_PRIME)
}

fn digest_gamma(gamma: &Option<CountMatrix>) -> u64 {
    let Some(g) = gamma else { return 0 };
    let mut h = fnv(FNV_OFFSET, g.rows() as u64);
    h = fnv(h, g.cols() as u64);
    for r in 0..g.rows() {
        for &v in g.row(r) {
            h = fnv(h, v as u64);
        }
    }
    h
}

fn digest_matches(matches: &Option<Vec<Vec<Match>>>) -> u64 {
    let Some(rows) = matches else { return 0 };
    let mut h = fnv(FNV_OFFSET, rows.len() as u64);
    for row in rows {
        h = fnv(h, row.len() as u64);
        for m in row {
            h = fnv(h, m.profile as u64);
            h = fnv(h, m.differences as u64);
        }
    }
    h
}

/// Candidates kept per query when the brownout controller has stepped the
/// service down to [`Tier::ReducedTopK`].
pub const REDUCED_TOPK: usize = 2;

/// Runs one query of this template on `engine` against `set`.
pub fn run_query(
    template: Template,
    engine: &GpuEngine,
    set: &WorkloadSet,
) -> Result<ServiceReport, EngineError> {
    run_query_tier(template, engine, set, Tier::Full)
}

/// Runs one query at a brownout service tier.
///
/// * [`Tier::Full`] — the template's native path.
/// * [`Tier::ReducedTopK`] — both FastID readbacks are routed through the
///   streaming top-k path with `k =` [`REDUCED_TOPK`] (cheaper readback,
///   shorter candidate list); LD and mixture are unchanged.
/// * [`Tier::CpuOnly`] — the engine is **not touched**: service time is the
///   modeled CPU baseline of Fig. 6 for this template's shape, which keeps
///   the tier available while the device is faulting.
pub fn run_query_tier(
    template: Template,
    engine: &GpuEngine,
    set: &WorkloadSet,
    tier: Tier,
) -> Result<ServiceReport, EngineError> {
    if tier == Tier::CpuOnly {
        return Ok(ServiceReport {
            service_ns: cpu_service_ns(template, set),
            passes: 1,
            recovery: None,
            digest: 0,
        });
    }
    match template {
        Template::Ld => {
            let r = engine.ld_self(&set.panel)?;
            Ok(service(
                &r.timing,
                r.passes,
                r.recovery,
                digest_gamma(&r.gamma),
            ))
        }
        Template::FastId if tier == Tier::ReducedTopK => {
            let r =
                engine.identity_search_topk(&set.fastid_queries, &set.fastid_db, REDUCED_TOPK)?;
            Ok(service(
                &r.timing,
                r.passes,
                r.recovery,
                digest_matches(&r.matches),
            ))
        }
        Template::FastId => {
            let r = engine.identity_search(&set.fastid_queries, &set.fastid_db)?;
            Ok(service(
                &r.timing,
                r.passes,
                r.recovery,
                digest_gamma(&r.gamma),
            ))
        }
        Template::FastIdTopK => {
            let k = if tier == Tier::ReducedTopK {
                REDUCED_TOPK
            } else {
                set.topk
            };
            let r = engine.identity_search_topk(&set.fastid_queries, &set.fastid_db, k)?;
            Ok(service(
                &r.timing,
                r.passes,
                r.recovery,
                digest_matches(&r.matches),
            ))
        }
        Template::Mixture => {
            let r = engine.mixture_analysis(&set.mixture_refs, &set.mixture_matrix)?;
            Ok(service(
                &r.timing,
                r.passes,
                r.recovery,
                digest_gamma(&r.gamma),
            ))
        }
    }
}

/// Modeled service time of this template on the CPU baseline (the Xeon
/// E5-2620 v2 of Fig. 6), used by the [`Tier::CpuOnly`] brownout tier.
/// Deterministic and fault-immune: the model GPU is not involved at all.
pub fn cpu_service_ns(template: Template, set: &WorkloadSet) -> u64 {
    let model = CpuModel::ivy_bridge_workstation();
    let kind = word_op_kind(compare_op(template.algorithm(), MixtureStrategy::Direct));
    let ns = match template {
        Template::Ld => {
            model.time_ns_for_bits(kind, set.panel.rows(), set.panel.rows(), set.panel.cols())
        }
        Template::FastId | Template::FastIdTopK => model.time_ns_for_bits(
            kind,
            set.fastid_queries.rows(),
            set.fastid_db.rows(),
            set.fastid_db.cols(),
        ),
        Template::Mixture => model.time_ns_for_bits(
            kind,
            set.mixture_refs.rows(),
            set.mixture_matrix.rows().max(1),
            set.mixture_refs.cols(),
        ),
    };
    (ns.max(1.0)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_core::{EngineOptions, ExecMode, MixtureStrategy};
    use snp_gpu_model::devices;

    #[test]
    fn every_template_services_in_full_mode() {
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev).with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        });
        let set = WorkloadSet::build(42);
        for t in [
            Template::Ld,
            Template::FastId,
            Template::FastIdTopK,
            Template::Mixture,
        ] {
            let r = run_query(t, &engine, &set).expect("clean run");
            assert!(r.service_ns > 0, "{:?} reported zero service time", t);
            assert!(r.passes >= 1);
            assert!(r.recovery.is_none(), "no fault plan → fast path");
        }
    }

    #[test]
    fn service_time_is_deterministic() {
        let set = WorkloadSet::build(42);
        let dev = devices::titan_v();
        let engine = GpuEngine::new(dev).with_options(EngineOptions {
            mode: ExecMode::Full,
            ..Default::default()
        });
        let a = run_query(Template::FastIdTopK, &engine, &set).unwrap();
        let b = run_query(Template::FastIdTopK, &engine, &set).unwrap();
        assert_eq!(a.service_ns, b.service_ns);
    }

    #[test]
    fn selection_expands_fastid_into_both_readback_paths() {
        let ts = templates_for(&[Algorithm::IdentitySearch]);
        assert_eq!(ts, vec![Template::FastId, Template::FastIdTopK]);
        assert!(ts.iter().all(|t| t.slug() == "fastid"));
    }
}
