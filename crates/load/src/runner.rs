//! The replay engine: arrivals → admission → two-level scheduler →
//! GpuEngine runs, with per-query trace attribution, flight recording, and
//! SLO judgment.
//!
//! Dispatch runs through the [`Scheduler`] (WFQ across tenants, EDF within
//! a tenant) on the simulator's virtual clock: the server picks its next
//! query whenever it goes free, among everything that has arrived by then.
//! With admission **disabled** (the default) the scheduler runs in FIFO
//! policy mode and reproduces the original single-FIFO server exactly:
//! query *i* starts at `max(arrival_i, done_{i-1})`, its service time is
//! the engine's modeled end-to-end run time, and its end-to-end latency is
//! `done_i − arrival_i`.
//!
//! With admission **enabled** every arrival passes the typed gates in
//! [`crate::admission`] (token-bucket quota → queue cap → provable
//! deadline feasibility), a hysteretic [`BrownoutController`] steps the
//! service tier under pressure, and per-tenant goodput is accounted so
//! fairness is measurable. Shed queries never touch the engine and are
//! never silent: each carries its [`ShedReason`] in records, metrics, and
//! the report.
//!
//! Every query runs with a fresh [`Tracer`] carrying its [`QueryCtx`], so
//! each engine/device/recovery span in the merged timeline names the query
//! that caused it. Per-query traces are merged onto the stream clock
//! (shifted by the query's start instant) into one Chrome timeline and fed
//! to a bounded [`FlightRecorder`]; the first typed device fault, a shed
//! storm, or — at the end of the run — the first SLO breach triggers a
//! post-mortem dump.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use snp_core::{
    CostScale, EngineOptions, ExecMode, FaultPlan, FaultProfile, GpuEngine, MixtureStrategy,
};
use snp_gpu_model::DeviceSpec;
use snp_trace::{merge_into, FlightRecorder, QueryCtx, TimeDomain, Trace, Tracer};

use crate::admission::{
    AdmissionConfig, BrownoutController, CostModel, ShedReason, TenantQuota, Tier, TierTransition,
    TokenBucket,
};
use crate::anatomy::{decompose_query, AnatomyReport, QueryAnatomy};
use crate::arrival::{arrival_times, ArrivalKind};
use crate::scheduler::{QueuedQuery, Scheduler};
use crate::slo::{evaluate, percentile, SloOutcome, SloPolicy};
use crate::workload::{run_query_tier, Template, WorkloadSet};

/// Registry metrics the generator feeds (`snpgpu metrics` surfaces them).
pub(crate) mod metrics {
    use std::sync::Mutex;

    use snp_trace::{registry, Histogram, LazyCounter, LazyHistogram};

    /// Queries replayed.
    pub static QUERIES: LazyCounter = LazyCounter::new("load.queries");
    /// Queries that ended in a typed fault or engine error.
    pub static FAILURES: LazyCounter = LazyCounter::new("load.failures");
    /// Recovery retries observed across all queries.
    pub static RETRIES: LazyCounter = LazyCounter::new("load.retries");
    /// End-to-end latency by algorithm.
    pub static LATENCY_LD: LazyHistogram = LazyHistogram::new("load.latency_ns.ld");
    /// End-to-end latency by algorithm.
    pub static LATENCY_FASTID: LazyHistogram = LazyHistogram::new("load.latency_ns.fastid");
    /// End-to-end latency by algorithm.
    pub static LATENCY_MIXTURE: LazyHistogram = LazyHistogram::new("load.latency_ns.mixture");
    /// Time queries spent waiting for the server.
    pub static QUEUE_WAIT: LazyHistogram = LazyHistogram::new("load.queue_wait_ns");
    /// Queries past every admission gate.
    pub static ADMITTED: LazyCounter = LazyCounter::new("load.admission.admitted");
    /// Queries shed at admission (all reasons).
    pub static SHED: LazyCounter = LazyCounter::new("load.admission.shed");
    /// Sheds: tenant over its token-bucket quota.
    pub static SHED_QUOTA: LazyCounter = LazyCounter::new("load.admission.shed.quota_exceeded");
    /// Sheds: queue-depth cap reached.
    pub static SHED_QUEUE_FULL: LazyCounter = LazyCounter::new("load.admission.shed.queue_full");
    /// Sheds: completion lower bound already past the deadline.
    pub static SHED_DEADLINE: LazyCounter =
        LazyCounter::new("load.admission.shed.deadline_unmeetable");
    /// Brownout tier steps (either direction).
    pub static BROWNOUT_TRANSITIONS: LazyCounter = LazyCounter::new("load.brownout.transitions");

    /// The latency histogram for an algorithm slug.
    pub fn latency_for(slug: &str) -> &'static LazyHistogram {
        match slug {
            "ld" => &LATENCY_LD,
            "fastid" => &LATENCY_FASTID,
            _ => &LATENCY_MIXTURE,
        }
    }

    /// Per-tenant end-to-end latency histograms. Registry names are
    /// `&'static str`, so each distinct tenant label is interned once
    /// (`name|tenant=<label>` — the Prometheus renderer turns the suffix
    /// into a real `tenant` label).
    pub fn tenant_latency(tenant: &str) -> &'static Histogram {
        static INTERNED: Mutex<Vec<(String, &'static Histogram)>> = Mutex::new(Vec::new());
        let mut interned = INTERNED.lock().unwrap();
        if let Some((_, h)) = interned.iter().find(|(t, _)| t == tenant) {
            return h;
        }
        let name: &'static str =
            Box::leak(format!("load.tenant.latency_ns|tenant={tenant}").into_boxed_str());
        let h = registry().histogram(name);
        interned.push((tenant.to_string(), h));
        h
    }
}

/// Deterministic fault injection for a load run.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Chaos profile name (`transient`, `loss`, …) — echoed into reports.
    pub profile_name: String,
    /// The profile itself.
    pub profile: FaultProfile,
    /// Arm the plan only for this query index; `None` arms every query
    /// (each with a decorrelated per-query seed).
    pub at_query: Option<usize>,
}

/// Everything that determines a load run. Two configs with equal fields
/// produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Device to replay against.
    pub device: DeviceSpec,
    /// Templates queries are drawn from (seeded, uniform).
    pub templates: Vec<Template>,
    /// Offered load in queries per virtual second.
    pub rate_qps: f64,
    /// Stream length.
    pub queries: usize,
    /// Master seed: arrivals, template picks, workload data, fault draws.
    pub seed: u64,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Tenant labels, assigned round-robin.
    pub tenants: Vec<&'static str>,
    /// Optional fault injection.
    pub fault: Option<FaultSpec>,
    /// Latency objectives.
    pub slo: SloPolicy,
    /// Admission control, quotas, and brownout (disabled by default —
    /// the legacy FIFO semantics).
    pub admission: AdmissionConfig,
    /// Spans retained by the flight recorder.
    pub flight_capacity: usize,
    /// Record per-query traces, the merged timeline, and the flight
    /// recorder. Sweeps turn this off to keep points cheap.
    pub record_timeline: bool,
    /// Decompose every accepted query's latency into named segments and
    /// aggregate the percentile-band [`AnatomyReport`]. Independent of
    /// `record_timeline`: anatomy keeps per-query traces alive only long
    /// enough to attribute them, never retaining the merged timeline.
    pub anatomy: bool,
    /// Virtual-cost scale armed on every engine run **and** on the cost
    /// model's calibration runs, so feasibility estimates track the scaled
    /// world. Identity by default — `snpgpu whatif` sets this for causal
    /// replay.
    pub cost_scale: CostScale,
    /// Scheduler policy override for what-if replay: `Some(true)` forces
    /// strict arrival-order FIFO, `Some(false)` forces WFQ+EDF. `None`
    /// keeps the default (FIFO exactly when admission is disabled).
    pub scheduler_fifo: Option<bool>,
}

impl LoadConfig {
    /// A config with conventional defaults for `device` and `templates`.
    pub fn new(device: DeviceSpec, templates: Vec<Template>) -> LoadConfig {
        LoadConfig {
            device,
            templates,
            rate_qps: 2_000.0,
            queries: 64,
            seed: 42,
            arrival: ArrivalKind::Poisson,
            tenants: vec!["casework", "research"],
            fault: None,
            slo: SloPolicy::default(),
            admission: AdmissionConfig::disabled(),
            flight_capacity: 256,
            record_timeline: true,
            anatomy: false,
            cost_scale: CostScale::default(),
            scheduler_fifo: None,
        }
    }
}

/// How one query ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Fault-free fast path, or recovering path with nothing to recover.
    Clean,
    /// Faults occurred and were fully recovered (retry / re-read / absorb).
    Recovered,
    /// Completed, but degraded (device loss mid-run, CPU fallback, …).
    Degraded,
    /// A typed device fault surfaced (fault kind name).
    Fault(String),
    /// Any other engine error.
    Error(String),
    /// Refused at admission, typed; the query never ran.
    Shed(ShedReason),
}

impl Outcome {
    /// Stable lowercase class label (JSON and span args).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Recovered => "recovered",
            Outcome::Degraded => "degraded",
            Outcome::Fault(_) => "fault",
            Outcome::Error(_) => "error",
            Outcome::Shed(_) => "shed",
        }
    }

    /// Whether this outcome spends error budget. Shedding does not: it is
    /// an intentional, typed refusal accounted by the shed budget instead.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Fault(_) | Outcome::Error(_))
    }

    /// Whether the query was refused at admission.
    pub fn is_shed(&self) -> bool {
        matches!(self, Outcome::Shed(_))
    }
}

/// One replayed query, fully resolved.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stream-wide query id (also the trace `query_id` arg).
    pub id: u64,
    /// Tenant label.
    pub tenant: &'static str,
    /// Template this query ran.
    pub template: Template,
    /// Arrival instant (virtual ns since stream start).
    pub arrival_ns: u64,
    /// Service start (after queueing; `= arrival_ns` for shed queries).
    pub start_ns: u64,
    /// Modeled engine time (0 for failed or shed queries).
    pub service_ns: u64,
    /// `start − arrival`.
    pub queue_wait_ns: u64,
    /// `done − arrival` (0 for shed queries).
    pub latency_ns: u64,
    /// Recovery retries this query needed.
    pub retries: u64,
    /// Service tier the query ran at ([`Tier::Full`] when admission is
    /// off; the tier in force at admission for shed queries).
    pub tier: Tier,
    /// Absolute deadline, when admission derived one.
    pub deadline_ns: Option<u64>,
    /// How it ended.
    pub outcome: Outcome,
}

/// Counts of query outcomes over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Fault-free queries.
    pub clean: usize,
    /// Queries that recovered from injected faults.
    pub recovered: usize,
    /// Queries that completed degraded.
    pub degraded: usize,
    /// Queries ending in a typed device fault.
    pub fault: usize,
    /// Queries ending in another engine error.
    pub error: usize,
    /// Queries shed at admission.
    pub shed: usize,
}

/// A post-mortem bundle dumped by the flight recorder.
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// Why it was dumped ("typed fault …", "shed storm …", "slo breach …").
    pub reason: String,
    /// The bundle: a valid Chrome trace with a `flightRecorder` header.
    pub json: String,
}

/// One tenant's admission and goodput accounting over a run.
#[derive(Debug, Clone)]
pub struct TenantReport {
    /// Tenant label.
    pub name: &'static str,
    /// WFQ weight in force.
    pub weight: f64,
    /// Queries this tenant offered.
    pub offered: usize,
    /// Queries admitted.
    pub admitted: usize,
    /// Queries shed at admission.
    pub shed: usize,
    /// Queries that completed (any completion outcome).
    pub completed: usize,
    /// Queries that completed **within their deadline** — the goodput.
    pub goodput: usize,
}

/// What the admission layer did over a run (present when enabled).
#[derive(Debug, Clone)]
pub struct AdmissionReport {
    /// Queries offered to admission.
    pub offered: usize,
    /// Queries admitted (and therefore dispatched — an admitted query is
    /// never shed later).
    pub admitted: usize,
    /// Queries shed, by gate.
    pub shed_quota: usize,
    /// Sheds at the queue-depth cap.
    pub shed_queue_full: usize,
    /// Sheds proven unable to meet their deadline.
    pub shed_deadline: usize,
    /// Total sheds / offered.
    pub shed_fraction: f64,
    /// Whether the shed fraction exceeded the configured shed budget
    /// (drives exit code 7, `SHED_BUDGET_EXCEEDED`).
    pub shed_budget_exceeded: bool,
    /// Completions within deadline across tenants.
    pub goodput: usize,
    /// Goodput over the makespan (queries per virtual second).
    pub goodput_qps: f64,
    /// max/min per-tenant goodput among tenants that offered load
    /// (1.0 = perfectly fair; `inf` when a tenant starved).
    pub tenant_goodput_ratio: f64,
    /// Engine-run completions whose result digest differed from the clean
    /// calibration digest — silent corruptions (must be 0).
    pub corruptions: usize,
    /// Tier in force when the run ended.
    pub final_tier: Tier,
    /// Every brownout step, in order.
    pub transitions: Vec<TierTransition>,
    /// Per-tenant accounting.
    pub tenants: Vec<TenantReport>,
}

/// Everything a load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Device name.
    pub device: String,
    /// Arrival process used.
    pub arrival: ArrivalKind,
    /// Offered rate (queries per virtual second).
    pub rate_qps: f64,
    /// Master seed.
    pub seed: u64,
    /// Fault profile name, if injection was armed.
    pub fault_profile: Option<String>,
    /// Per-query records, in arrival order.
    pub records: Vec<QueryRecord>,
    /// Outcome class counts.
    pub outcomes: OutcomeCounts,
    /// Per-algorithm SLO verdicts over **accepted** queries (order: ld,
    /// fastid, mixture).
    pub slo: Vec<SloOutcome>,
    /// Whether any algorithm breached its SLO.
    pub breached: bool,
    /// Stream makespan: the last completion instant (virtual ns).
    pub duration_ns: u64,
    /// Overall p50 across accepted queries.
    pub p50_all_ns: u64,
    /// Overall p99 across accepted queries.
    pub p99_all_ns: u64,
    /// Completed-query throughput over the makespan.
    pub achieved_qps: f64,
    /// Admission accounting (present when admission was enabled).
    pub admission: Option<AdmissionReport>,
    /// Percentile-band latency anatomy over accepted queries (present when
    /// [`LoadConfig::anatomy`] was set).
    pub anatomy: Option<AnatomyReport>,
    /// Spans evicted from the flight-recorder ring during the run.
    pub flight_dropped_spans: u64,
    /// Merged query-attributed Chrome timeline (when recorded).
    pub timeline: Option<Trace>,
    /// Flight-recorder dump, triggered by the first typed fault, a shed
    /// storm, or — at end of run — the first SLO breach.
    pub postmortem: Option<Postmortem>,
}

/// Decorrelates per-query fault streams from the master seed.
fn query_fault_seed(seed: u64, qid: u64) -> u64 {
    seed.wrapping_add((qid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// One pre-resolved arrival (template picks draw in arrival order, so the
/// stream is identical whatever the dispatch policy does later).
struct Planned {
    qid: u64,
    arrival_ns: u64,
    template: Template,
    tenant: usize,
}

/// Replays one seeded query stream. Deterministic: equal configs produce
/// byte-identical reports (all clocks are virtual).
pub fn run(cfg: &LoadConfig) -> LoadReport {
    assert!(!cfg.templates.is_empty(), "no query templates selected");
    assert!(!cfg.tenants.is_empty(), "need at least one tenant label");
    let arrivals = arrival_times(cfg.arrival, cfg.rate_qps, cfg.queries, cfg.seed);
    let set = WorkloadSet::build(cfg.seed);
    let mut pick = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_D00D_F00D);
    let planned: Vec<Planned> = arrivals
        .iter()
        .enumerate()
        .map(|(qid, &arrival_ns)| Planned {
            qid: qid as u64,
            arrival_ns,
            template: cfg.templates[pick.random_range(0..cfg.templates.len())],
            tenant: qid % cfg.tenants.len(),
        })
        .collect();

    let admission = &cfg.admission;
    let quotas: Vec<TenantQuota> = cfg.tenants.iter().map(|t| admission.quota_for(t)).collect();
    let weights: Vec<f64> = quotas.iter().map(|q| q.weight).collect();
    let mut buckets: Vec<TokenBucket> = quotas
        .iter()
        .map(|q| TokenBucket::new(q.rate_qps, q.burst))
        .collect();
    let cost = admission
        .enabled
        .then(|| CostModel::calibrate(&cfg.device, &set, cfg.cost_scale));
    let mut brownout = BrownoutController::new(admission.brownout.clone());
    let fifo = cfg.scheduler_fifo.unwrap_or(!admission.enabled);
    let mut scheduler = Scheduler::new(&weights, fifo);

    let stream = if cfg.record_timeline {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let stream_track = cfg
        .record_timeline
        .then(|| stream.track("loadgen · queries", TimeDomain::Virtual));
    let recorder = FlightRecorder::new(cfg.flight_capacity);
    let mut merged: Vec<(Trace, u64)> = Vec::new();
    let mut anatomies: Vec<QueryAnatomy> = Vec::new();
    let mut postmortem: Option<Postmortem> = None;

    let n = planned.len();
    let mut records: Vec<Option<QueryRecord>> = (0..n).map(|_| None).collect();
    let mut outcomes = OutcomeCounts::default();
    let mut tenant_reports: Vec<TenantReport> = cfg
        .tenants
        .iter()
        .zip(&quotas)
        .map(|(name, q)| TenantReport {
            name,
            weight: q.weight,
            offered: 0,
            admitted: 0,
            shed: 0,
            completed: 0,
            goodput: 0,
        })
        .collect();
    let (mut shed_quota, mut shed_queue_full, mut shed_deadline) = (0usize, 0usize, 0usize);
    let mut corruptions = 0usize;
    let mut completed = 0usize;
    let mut failed = 0usize;
    let mut consecutive_sheds = 0usize;

    let mut server_free = 0u64;
    let mut next = 0usize;
    while next < n || !scheduler.is_empty() {
        // The instant of the next dispatch decision: when the server goes
        // free, or — with an empty queue — when the next query arrives.
        let t = if scheduler.is_empty() {
            server_free.max(planned[next].arrival_ns)
        } else {
            server_free
        };

        // Admission: every arrival at or before `t` gets its verdict at
        // its own arrival instant, in arrival order.
        while next < n && planned[next].arrival_ns <= t {
            let p = &planned[next];
            next += 1;
            tenant_reports[p.tenant].offered += 1;
            if !admission.enabled {
                scheduler.push(QueuedQuery {
                    seq: p.qid,
                    tenant: p.tenant,
                    template: p.template,
                    arrival_ns: p.arrival_ns,
                    deadline_ns: u64::MAX,
                    est_ns: 0,
                });
                tenant_reports[p.tenant].admitted += 1;
                continue;
            }
            let tier = brownout.tier();
            let est_ns = cost
                .as_ref()
                .expect("cost model calibrated when admission is on")
                .estimate_ns(p.template, tier);
            let p99_objective = cfg.slo.for_algorithm(p.template.slug()).p99_ns;
            let deadline_ns = p
                .arrival_ns
                .saturating_add((admission.deadline_slack * p99_objective as f64) as u64);
            let verdict = if !buckets[p.tenant].try_take(p.arrival_ns) {
                Some(ShedReason::QuotaExceeded)
            } else if scheduler.len() >= admission.queue_cap {
                Some(ShedReason::QueueFull)
            } else {
                // Provable lower bound on this query's completion: the
                // server is busy until `server_free`, every queued
                // same-tenant query with an earlier EDF key precedes it,
                // and the calibrated estimate is a clean-run lower bound.
                let backlog = scheduler.backlog_before(p.tenant, deadline_ns, p.qid);
                let bound = p
                    .arrival_ns
                    .max(server_free)
                    .saturating_add(backlog)
                    .saturating_add(est_ns);
                (bound > deadline_ns).then_some(ShedReason::DeadlineUnmeetable)
            };
            match verdict {
                None => {
                    scheduler.push(QueuedQuery {
                        seq: p.qid,
                        tenant: p.tenant,
                        template: p.template,
                        arrival_ns: p.arrival_ns,
                        deadline_ns,
                        est_ns,
                    });
                    tenant_reports[p.tenant].admitted += 1;
                    metrics::ADMITTED.add(1);
                    consecutive_sheds = 0;
                }
                Some(reason) => {
                    metrics::QUERIES.add(1);
                    metrics::SHED.add(1);
                    match reason {
                        ShedReason::QuotaExceeded => {
                            shed_quota += 1;
                            metrics::SHED_QUOTA.add(1);
                        }
                        ShedReason::QueueFull => {
                            shed_queue_full += 1;
                            metrics::SHED_QUEUE_FULL.add(1);
                        }
                        ShedReason::DeadlineUnmeetable => {
                            shed_deadline += 1;
                            metrics::SHED_DEADLINE.add(1);
                        }
                    }
                    tenant_reports[p.tenant].shed += 1;
                    outcomes.shed += 1;
                    consecutive_sheds += 1;
                    if let Some(track) = stream_track {
                        stream.span_with(
                            track,
                            "shed",
                            format!("q{} shed", p.qid),
                            p.arrival_ns,
                            p.arrival_ns,
                            vec![
                                ("query_id", p.qid.into()),
                                ("tenant", cfg.tenants[p.tenant].into()),
                                ("algorithm", p.template.slug().into()),
                                ("shed_reason", reason.label().into()),
                            ],
                        );
                    }
                    if consecutive_sheds >= admission.storm_run && postmortem.is_none() {
                        let reason_text = format!(
                            "shed storm: {consecutive_sheds} consecutive sheds through query {} ({})",
                            p.qid,
                            reason.label()
                        );
                        let ctx = QueryCtx::new(p.qid, cfg.tenants[p.tenant]);
                        postmortem = Some(Postmortem {
                            json: recorder.postmortem(&reason_text, Some(&ctx)),
                            reason: reason_text,
                        });
                    }
                    records[p.qid as usize] = Some(QueryRecord {
                        id: p.qid,
                        tenant: cfg.tenants[p.tenant],
                        template: p.template,
                        arrival_ns: p.arrival_ns,
                        start_ns: p.arrival_ns,
                        service_ns: 0,
                        queue_wait_ns: 0,
                        latency_ns: 0,
                        retries: 0,
                        tier,
                        deadline_ns: Some(deadline_ns),
                        outcome: Outcome::Shed(reason),
                    });
                }
            }
        }

        // Dispatch: the scheduler picks; the engine serves.
        let Some(q) = scheduler.pop() else {
            continue;
        };
        let qid = q.seq;
        let tenant = cfg.tenants[q.tenant];
        let template = q.template;
        let tier = if admission.enabled {
            brownout.tier()
        } else {
            Tier::Full
        };
        let ctx = QueryCtx::new(qid, tenant);
        let tracer = if cfg.record_timeline || cfg.anatomy {
            Tracer::enabled().with_query_ctx(ctx.clone())
        } else {
            Tracer::disabled()
        };
        let mut engine = GpuEngine::new(cfg.device.clone())
            .with_options(EngineOptions {
                mode: ExecMode::Full,
                double_buffer: true,
                mixture: MixtureStrategy::Direct,
                cost_scale: cfg.cost_scale,
                ..Default::default()
            })
            .with_tracer(tracer.clone());
        if let Some(spec) = &cfg.fault {
            let armed = spec.at_query.is_none_or(|at| at as u64 == qid);
            if armed {
                engine = engine.with_fault_plan(FaultPlan::new(
                    query_fault_seed(cfg.seed, qid),
                    spec.profile,
                ));
            }
        }

        let result = run_query_tier(template, &engine, &set, tier);
        let (service_ns, retries, outcome) = match &result {
            Ok(sr) => {
                let retries = sr.recovery.as_ref().map_or(0, |r| r.retries);
                let outcome = match &sr.recovery {
                    None => Outcome::Clean,
                    Some(r) if r.degraded() => Outcome::Degraded,
                    Some(r) if r.retries + r.corruption_detected + r.stalls_absorbed > 0 => {
                        Outcome::Recovered
                    }
                    Some(_) => Outcome::Clean,
                };
                (sr.service_ns, retries, outcome)
            }
            Err(e) => match e.device_fault() {
                Some(f) => (0, 0, Outcome::Fault(f.kind.name().to_string())),
                None => (0, 0, Outcome::Error(e.to_string())),
            },
        };

        let start_ns = q.arrival_ns.max(t);
        let done_ns = start_ns + service_ns;
        server_free = done_ns;
        let queue_wait_ns = start_ns - q.arrival_ns;
        let latency_ns = done_ns - q.arrival_ns;

        metrics::QUERIES.add(1);
        metrics::RETRIES.add(retries);
        if outcome.is_failure() {
            metrics::FAILURES.add(1);
            failed += 1;
        }
        // Latency histograms carry an exemplar per hit bucket: the query
        // id, tenant, and its stream-clock offset, so a p99 bucket links
        // straight to the flight-recorder span that caused it.
        metrics::latency_for(template.slug()).record_with_exemplar(
            latency_ns,
            qid,
            Some(tenant),
            start_ns,
        );
        metrics::tenant_latency(tenant).record_with_exemplar(
            latency_ns,
            qid,
            Some(tenant),
            start_ns,
        );
        metrics::QUEUE_WAIT.record(queue_wait_ns);
        match outcome {
            Outcome::Clean => outcomes.clean += 1,
            Outcome::Recovered => outcomes.recovered += 1,
            Outcome::Degraded => outcomes.degraded += 1,
            Outcome::Fault(_) => outcomes.fault += 1,
            Outcome::Error(_) => outcomes.error += 1,
            Outcome::Shed(_) => unreachable!("shed queries are never dispatched"),
        }
        completed += 1;
        tenant_reports[q.tenant].completed += 1;
        if !outcome.is_failure() && done_ns <= q.deadline_ns {
            tenant_reports[q.tenant].goodput += 1;
        }
        if let (Some(cost), Ok(sr)) = (&cost, &result) {
            // Engine-run completions must reproduce the clean calibration
            // digest — recovery guarantees results, so any drift here is a
            // silent corruption.
            if tier != Tier::CpuOnly && sr.digest != cost.expected_digest(template, tier) {
                corruptions += 1;
            }
        }

        if let Some(track) = stream_track {
            stream.span_with(
                track,
                "query",
                format!("q{qid} {}", template.slug()),
                q.arrival_ns,
                done_ns,
                vec![
                    ("query_id", qid.into()),
                    ("tenant", tenant.into()),
                    ("algorithm", template.slug().into()),
                    ("queue_wait_ns", queue_wait_ns.into()),
                    ("tier", tier.label().into()),
                    ("outcome", outcome.label().into()),
                ],
            );
        }
        let trace = tracer.snapshot();
        if cfg.anatomy {
            anatomies.push(decompose_query(
                qid,
                queue_wait_ns,
                service_ns,
                tier,
                trace.as_ref(),
            ));
        }
        if cfg.record_timeline {
            if let Some(trace) = trace {
                recorder.absorb(&trace, start_ns);
                merged.push((trace, start_ns));
            }
        }
        if postmortem.is_none() {
            let device_lost = result
                .as_ref()
                .ok()
                .and_then(|sr| sr.recovery.as_ref())
                .is_some_and(|r| r.device_lost);
            let reason = match &outcome {
                Outcome::Fault(kind) => Some(format!("typed fault on query {qid}: {kind}")),
                _ if device_lost => Some(format!(
                    "device lost on query {qid} (completed {})",
                    outcome.label()
                )),
                _ => None,
            };
            if let Some(reason) = reason {
                postmortem = Some(Postmortem {
                    json: recorder.postmortem(&reason, Some(&ctx)),
                    reason,
                });
            }
        }

        records[qid as usize] = Some(QueryRecord {
            id: qid,
            tenant,
            template,
            arrival_ns: q.arrival_ns,
            start_ns,
            service_ns,
            queue_wait_ns,
            latency_ns,
            retries,
            tier,
            deadline_ns: admission.enabled.then_some(q.deadline_ns),
            outcome,
        });

        if admission.enabled {
            let before = brownout.transitions().len();
            brownout.observe(done_ns, scheduler.len(), brownout.burn(failed, completed));
            let steps = brownout.transitions().len() - before;
            metrics::BROWNOUT_TRANSITIONS.add(steps as u64);
        }
    }

    let records: Vec<QueryRecord> = records
        .into_iter()
        .map(|r| r.expect("every planned query resolves to a record"))
        .collect();

    // Judge each algorithm against its objectives, over accepted queries.
    let mut slo = Vec::new();
    for slug in ["ld", "fastid", "mixture"] {
        let of_alg: Vec<&QueryRecord> = records
            .iter()
            .filter(|r| r.template.slug() == slug && !r.outcome.is_shed())
            .collect();
        if of_alg.is_empty() {
            continue;
        }
        let lat: Vec<u64> = of_alg.iter().map(|r| r.latency_ns).collect();
        let qw: Vec<u64> = of_alg.iter().map(|r| r.queue_wait_ns).collect();
        let failed = of_alg.iter().filter(|r| r.outcome.is_failure()).count();
        slo.push(evaluate(
            match slug {
                "ld" => "ld",
                "fastid" => "fastid",
                _ => "mixture",
            },
            &lat,
            &qw,
            failed,
            cfg.slo.for_algorithm(slug),
        ));
    }
    let breached = slo.iter().any(|o| o.breached);
    if breached && postmortem.is_none() && cfg.record_timeline {
        let reasons: Vec<String> = slo
            .iter()
            .filter(|o| o.breached)
            .map(|o| format!("{}: {}", o.algorithm, o.reasons.join("; ")))
            .collect();
        let reason = format!("slo breach: {}", reasons.join(" | "));
        postmortem = Some(Postmortem {
            json: recorder.postmortem(&reason, None),
            reason,
        });
    }

    let timeline = if cfg.record_timeline {
        let mut t = stream.snapshot().unwrap_or_default();
        for (trace, start) in &merged {
            merge_into(&mut t, trace, *start);
        }
        Some(t)
    } else {
        None
    };
    let (flight_dropped_spans, _) = recorder.dropped();

    let accepted: Vec<&QueryRecord> = records.iter().filter(|r| !r.outcome.is_shed()).collect();
    let mut all_lat: Vec<u64> = accepted.iter().map(|r| r.latency_ns).collect();
    all_lat.sort_unstable();
    let duration_ns = accepted
        .iter()
        .map(|r| r.start_ns + r.service_ns)
        .max()
        .unwrap_or(0);

    let admission_report = admission.enabled.then(|| {
        let offered = records.len();
        let shed = outcomes.shed;
        let admitted = offered - shed;
        let goodput: usize = tenant_reports.iter().map(|t| t.goodput).sum();
        let shed_fraction = if offered == 0 {
            0.0
        } else {
            shed as f64 / offered as f64
        };
        let rates: Vec<f64> = tenant_reports
            .iter()
            .filter(|t| t.offered > 0)
            .map(|t| t.goodput as f64)
            .collect();
        let tenant_goodput_ratio = match (
            rates.iter().cloned().fold(f64::NAN, f64::max),
            rates.iter().cloned().fold(f64::NAN, f64::min),
        ) {
            (max, min) if min > 0.0 => max / min,
            (max, _) if max > 0.0 => f64::INFINITY,
            _ => 1.0,
        };
        AdmissionReport {
            offered,
            admitted,
            shed_quota,
            shed_queue_full,
            shed_deadline,
            shed_fraction,
            shed_budget_exceeded: shed_fraction > admission.shed_budget,
            goodput,
            goodput_qps: if duration_ns == 0 {
                0.0
            } else {
                goodput as f64 * 1e9 / duration_ns as f64
            },
            tenant_goodput_ratio,
            corruptions,
            final_tier: brownout.tier(),
            transitions: brownout.transitions().to_vec(),
            tenants: tenant_reports,
        }
    });

    LoadReport {
        device: cfg.device.name.clone(),
        arrival: cfg.arrival,
        rate_qps: cfg.rate_qps,
        seed: cfg.seed,
        fault_profile: cfg.fault.as_ref().map(|f| f.profile_name.clone()),
        outcomes,
        breached,
        duration_ns,
        p50_all_ns: percentile(&all_lat, 50.0),
        p99_all_ns: percentile(&all_lat, 99.0),
        achieved_qps: if duration_ns == 0 {
            0.0
        } else {
            accepted.len() as f64 * 1e9 / duration_ns as f64
        },
        records,
        slo,
        admission: admission_report,
        anatomy: cfg.anatomy.then(|| AnatomyReport::aggregate(&anatomies)),
        flight_dropped_spans,
        timeline,
        postmortem,
    }
}

/// One measured offered-load level in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The offered rate at this point.
    pub rate_qps: f64,
    /// The full run report (timeline disabled for sweep points).
    pub report: LoadReport,
}

impl SweepPoint {
    /// Goodput at this point: deadline-met completions per virtual second
    /// under admission, completed throughput otherwise.
    pub fn goodput_qps(&self) -> f64 {
        match &self.report.admission {
            Some(a) => a.goodput_qps,
            None => self.report.achieved_qps,
        }
    }
}

/// A saturation sweep: the same seeded stream replayed at stepped offered
/// loads, plus the detected latency-vs-throughput knee.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Points in ascending offered-load order.
    pub points: Vec<SweepPoint>,
    /// Index of the first point past the knee (p99 ≥ 2× the lightest
    /// point's p99), if the sweep saturated.
    pub knee: Option<usize>,
}

/// The default offered-load ladder, as multiples of the base rate.
pub const SWEEP_MULTIPLIERS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Replays the stream at `multipliers × cfg.rate_qps` and locates the
/// saturation knee. Timeline recording is disabled per point (a sweep is
/// about aggregate latency, not span-level attribution).
pub fn saturation_sweep(cfg: &LoadConfig, multipliers: &[f64]) -> SweepReport {
    let mut points = Vec::with_capacity(multipliers.len());
    for &mult in multipliers {
        let mut point_cfg = cfg.clone();
        point_cfg.rate_qps = cfg.rate_qps * mult;
        point_cfg.record_timeline = false;
        let report = run(&point_cfg);
        points.push(SweepPoint {
            rate_qps: point_cfg.rate_qps,
            report,
        });
    }
    let base_p99 = points.first().map_or(0, |p| p.report.p99_all_ns);
    let knee = points
        .iter()
        .position(|p| base_p99 > 0 && p.report.p99_all_ns >= base_p99.saturating_mul(2));
    SweepReport { points, knee }
}

impl SweepReport {
    /// Minimum goodput of the points past the knee, as a fraction of the
    /// knee point's goodput — the "stays up past saturation" figure.
    /// `None` without a knee or without post-knee points.
    pub fn goodput_retention(&self) -> Option<f64> {
        let knee = self.knee?;
        let at_knee = self.points[knee].goodput_qps();
        if at_knee <= 0.0 {
            return None;
        }
        self.points[knee..]
            .iter()
            .map(|p| p.goodput_qps() / at_knee)
            .fold(None, |acc: Option<f64>, v| {
                Some(acc.map_or(v, |a| a.min(v)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;
    use snp_trace::chrome;

    fn small_cfg() -> LoadConfig {
        let mut cfg = LoadConfig::new(
            devices::titan_v(),
            vec![Template::Ld, Template::FastIdTopK, Template::Mixture],
        );
        cfg.queries = 24;
        cfg
    }

    #[test]
    fn run_is_deterministic_and_queue_is_consistent() {
        let cfg = small_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.latency_ns, y.latency_ns);
            assert_eq!(x.outcome, y.outcome);
        }
        for r in &a.records {
            assert_eq!(r.latency_ns, r.queue_wait_ns + r.service_ns);
            assert!(r.start_ns >= r.arrival_ns);
        }
        assert_eq!(a.p99_all_ns, b.p99_all_ns);
    }

    #[test]
    fn disabled_admission_is_fifo_in_arrival_order() {
        let report = run(&small_cfg());
        assert!(report.admission.is_none());
        let mut server_free = 0u64;
        for r in &report.records {
            assert_eq!(r.start_ns, r.arrival_ns.max(server_free), "q{}", r.id);
            assert_eq!(r.tier, Tier::Full);
            assert_eq!(r.deadline_ns, None);
            server_free = r.start_ns + r.service_ns;
        }
    }

    #[test]
    fn timeline_validates_and_attributes_queries() {
        let report = run(&small_cfg());
        let timeline = report.timeline.expect("timeline recorded");
        let json = chrome::export_chrome_trace(&timeline);
        chrome::validate(&json).expect("merged timeline is valid");
        // Every engine-run span carries its query id.
        let runs: Vec<_> = timeline.events.iter().filter(|e| e.cat == "run").collect();
        assert!(!runs.is_empty());
        assert!(runs
            .iter()
            .all(|e| e.args.iter().any(|(k, _)| *k == "query_id")));
    }

    #[test]
    fn device_loss_dumps_a_postmortem_with_the_query_id() {
        let mut cfg = small_cfg();
        // The stock `loss` profile drops the device at command #9; the
        // small loadgen workloads finish in fewer host commands, so pull
        // the loss earlier to guarantee it lands.
        cfg.fault = Some(FaultSpec {
            profile_name: "loss".into(),
            profile: FaultProfile {
                device_loss_at: Some(2),
                ..FaultProfile::loss()
            },
            at_query: Some(3),
        });
        let report = run(&cfg);
        // The armed query either surfaced a typed fault (postmortem at
        // fault time) or completed degraded via recovery.
        let armed = &report.records[3];
        assert!(
            armed.outcome != Outcome::Clean,
            "fault plan had no effect: {:?}",
            armed.outcome
        );
        let pm = report.postmortem.as_ref().expect("device loss must dump");
        chrome::validate(&pm.json).expect("postmortem bundle is valid");
        assert!(pm.json.contains("\"query_id\":3"), "dump names the query");
        assert!(pm.reason.contains("query 3"));
    }

    #[test]
    fn saturation_sweep_finds_a_knee_under_overload() {
        let mut cfg = small_cfg();
        cfg.queries = 16;
        // Base rate low; highest multiplier must saturate the server.
        cfg.rate_qps = 500.0;
        let sweep = saturation_sweep(&cfg, &[1.0, 64.0, 4096.0]);
        assert_eq!(sweep.points.len(), 3);
        let p99s: Vec<u64> = sweep.points.iter().map(|p| p.report.p99_all_ns).collect();
        assert!(
            p99s.last().unwrap() > p99s.first().unwrap(),
            "overload did not raise p99: {p99s:?}"
        );
        assert!(sweep.knee.is_some(), "no knee found: {p99s:?}");
    }

    #[test]
    fn admission_sheds_typed_under_overload_and_never_sheds_admitted() {
        let mut cfg = small_cfg();
        cfg.queries = 48;
        cfg.arrival = ArrivalKind::Bursty;
        cfg.rate_qps = 200_000.0; // far past saturation
        cfg.admission = AdmissionConfig {
            queue_cap: 4,
            ..AdmissionConfig::standard()
        };
        let report = run(&cfg);
        let adm = report.admission.as_ref().expect("admission report");
        assert!(adm.offered == 48);
        assert!(outcome_counts_consistent(&report));
        assert!(adm.shed_fraction > 0.0, "overload must shed");
        // Typed, never silent: every shed names its gate.
        for r in &report.records {
            if let Outcome::Shed(reason) = &r.outcome {
                assert!(!reason.label().is_empty());
                assert_eq!(r.service_ns, 0);
            }
        }
        // An admitted query always completes: admitted == completed.
        assert_eq!(
            adm.admitted,
            report.outcomes.clean
                + report.outcomes.recovered
                + report.outcomes.degraded
                + report.outcomes.fault
                + report.outcomes.error
        );
        assert_eq!(adm.corruptions, 0, "clean run cannot corrupt");
        // Accepted-query latency stays bounded by the queue cap: the SLO
        // over accepted queries must hold even at this offered rate.
        assert!(!report.breached, "{:?}", report.slo);
    }

    fn outcome_counts_consistent(report: &LoadReport) -> bool {
        let o = &report.outcomes;
        o.clean + o.recovered + o.degraded + o.fault + o.error + o.shed == report.records.len()
    }

    #[test]
    fn fairness_holds_under_equal_weights() {
        let mut cfg = small_cfg();
        cfg.queries = 64;
        cfg.arrival = ArrivalKind::Bursty;
        cfg.rate_qps = 16_000.0;
        cfg.admission = AdmissionConfig::standard();
        let report = run(&cfg);
        let adm = report.admission.unwrap();
        assert!(
            adm.tenant_goodput_ratio <= 2.0,
            "tenant starved: ratio {} ({:?})",
            adm.tenant_goodput_ratio,
            adm.tenants
        );
    }

    #[test]
    fn brownout_steps_down_under_sustained_overload() {
        let mut cfg = small_cfg();
        cfg.queries = 96;
        cfg.arrival = ArrivalKind::Bursty;
        cfg.rate_qps = 64_000.0;
        cfg.admission = AdmissionConfig {
            brownout: crate::admission::BrownoutConfig {
                high_water: 4,
                low_water: 1,
                dwell: 2,
                ..Default::default()
            },
            queue_cap: 64,
            ..AdmissionConfig::standard()
        };
        let report = run(&cfg);
        let adm = report.admission.unwrap();
        assert!(
            !adm.transitions.is_empty(),
            "sustained 32x overload must trip the brownout"
        );
        assert!(report
            .records
            .iter()
            .any(|r| r.tier != Tier::Full && !r.outcome.is_shed()));
    }

    #[test]
    fn shed_storm_dumps_the_flight_recorder() {
        let mut cfg = small_cfg();
        cfg.queries = 64;
        cfg.arrival = ArrivalKind::Bursty;
        cfg.rate_qps = 500_000.0;
        cfg.admission = AdmissionConfig {
            queue_cap: 2,
            storm_run: 4,
            shed_budget: 0.1,
            ..AdmissionConfig::standard()
        };
        let report = run(&cfg);
        let adm = report.admission.as_ref().unwrap();
        assert!(
            adm.shed_budget_exceeded,
            "shed {} of {}",
            adm.shed_fraction, adm.offered
        );
        let pm = report.postmortem.expect("storm must dump");
        assert!(pm.reason.contains("shed storm"), "{}", pm.reason);
        chrome::validate(&pm.json).expect("storm bundle is a valid Chrome trace");
    }
}
