//! The open-loop replay engine: arrivals → FIFO queue → GpuEngine runs,
//! with per-query trace attribution, flight recording, and SLO judgment.
//!
//! The queue model is a single FIFO server on the simulator's virtual
//! clock: query *i* starts at `max(arrival_i, done_{i-1})`, its service
//! time is the engine's modeled end-to-end run time, and its end-to-end
//! latency is `done_i − arrival_i`. That makes queue-wait — the quantity
//! that explodes past the saturation knee — explicit rather than folded
//! into the engine model.
//!
//! Every query runs with a fresh [`Tracer`] carrying its [`QueryCtx`], so
//! each engine/device/recovery span in the merged timeline names the query
//! that caused it. Per-query traces are merged onto the stream clock
//! (shifted by the query's start instant) into one Chrome timeline and fed
//! to a bounded [`FlightRecorder`]; the first typed device fault — or, at
//! the end of the run, the first SLO breach — triggers a post-mortem dump.

use rand::{rngs::StdRng, RngExt, SeedableRng};
use snp_core::{EngineOptions, ExecMode, FaultPlan, FaultProfile, GpuEngine, MixtureStrategy};
use snp_gpu_model::DeviceSpec;
use snp_trace::{merge_into, FlightRecorder, QueryCtx, TimeDomain, Trace, Tracer};

use crate::arrival::{arrival_times, ArrivalKind};
use crate::slo::{evaluate, percentile, SloOutcome, SloPolicy};
use crate::workload::{run_query, Template, WorkloadSet};

/// Registry metrics the generator feeds (`snpgpu metrics` surfaces them).
pub(crate) mod metrics {
    use snp_trace::{LazyCounter, LazyHistogram};

    /// Queries replayed.
    pub static QUERIES: LazyCounter = LazyCounter::new("load.queries");
    /// Queries that ended in a typed fault or engine error.
    pub static FAILURES: LazyCounter = LazyCounter::new("load.failures");
    /// Recovery retries observed across all queries.
    pub static RETRIES: LazyCounter = LazyCounter::new("load.retries");
    /// End-to-end latency by algorithm.
    pub static LATENCY_LD: LazyHistogram = LazyHistogram::new("load.latency_ns.ld");
    /// End-to-end latency by algorithm.
    pub static LATENCY_FASTID: LazyHistogram = LazyHistogram::new("load.latency_ns.fastid");
    /// End-to-end latency by algorithm.
    pub static LATENCY_MIXTURE: LazyHistogram = LazyHistogram::new("load.latency_ns.mixture");
    /// Time queries spent waiting for the server.
    pub static QUEUE_WAIT: LazyHistogram = LazyHistogram::new("load.queue_wait_ns");

    /// The latency histogram for an algorithm slug.
    pub fn latency_for(slug: &str) -> &'static LazyHistogram {
        match slug {
            "ld" => &LATENCY_LD,
            "fastid" => &LATENCY_FASTID,
            _ => &LATENCY_MIXTURE,
        }
    }
}

/// Deterministic fault injection for a load run.
#[derive(Debug, Clone)]
pub struct FaultSpec {
    /// Chaos profile name (`transient`, `loss`, …) — echoed into reports.
    pub profile_name: String,
    /// The profile itself.
    pub profile: FaultProfile,
    /// Arm the plan only for this query index; `None` arms every query
    /// (each with a decorrelated per-query seed).
    pub at_query: Option<usize>,
}

/// Everything that determines a load run. Two configs with equal fields
/// produce byte-identical reports.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Device to replay against.
    pub device: DeviceSpec,
    /// Templates queries are drawn from (seeded, uniform).
    pub templates: Vec<Template>,
    /// Offered load in queries per virtual second.
    pub rate_qps: f64,
    /// Stream length.
    pub queries: usize,
    /// Master seed: arrivals, template picks, workload data, fault draws.
    pub seed: u64,
    /// Arrival process.
    pub arrival: ArrivalKind,
    /// Tenant labels, assigned round-robin.
    pub tenants: Vec<&'static str>,
    /// Optional fault injection.
    pub fault: Option<FaultSpec>,
    /// Latency objectives.
    pub slo: SloPolicy,
    /// Spans retained by the flight recorder.
    pub flight_capacity: usize,
    /// Record per-query traces, the merged timeline, and the flight
    /// recorder. Sweeps turn this off to keep points cheap.
    pub record_timeline: bool,
}

impl LoadConfig {
    /// A config with conventional defaults for `device` and `templates`.
    pub fn new(device: DeviceSpec, templates: Vec<Template>) -> LoadConfig {
        LoadConfig {
            device,
            templates,
            rate_qps: 2_000.0,
            queries: 64,
            seed: 42,
            arrival: ArrivalKind::Poisson,
            tenants: vec!["casework", "research"],
            fault: None,
            slo: SloPolicy::default(),
            flight_capacity: 256,
            record_timeline: true,
        }
    }
}

/// How one query ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Fault-free fast path, or recovering path with nothing to recover.
    Clean,
    /// Faults occurred and were fully recovered (retry / re-read / absorb).
    Recovered,
    /// Completed, but degraded (device loss mid-run, CPU fallback, …).
    Degraded,
    /// A typed device fault surfaced (fault kind name).
    Fault(String),
    /// Any other engine error.
    Error(String),
}

impl Outcome {
    /// Stable lowercase class label (JSON and span args).
    pub fn label(&self) -> &'static str {
        match self {
            Outcome::Clean => "clean",
            Outcome::Recovered => "recovered",
            Outcome::Degraded => "degraded",
            Outcome::Fault(_) => "fault",
            Outcome::Error(_) => "error",
        }
    }

    /// Whether this outcome spends error budget.
    pub fn is_failure(&self) -> bool {
        matches!(self, Outcome::Fault(_) | Outcome::Error(_))
    }
}

/// One replayed query, fully resolved.
#[derive(Debug, Clone)]
pub struct QueryRecord {
    /// Stream-wide query id (also the trace `query_id` arg).
    pub id: u64,
    /// Tenant label.
    pub tenant: &'static str,
    /// Template this query ran.
    pub template: Template,
    /// Arrival instant (virtual ns since stream start).
    pub arrival_ns: u64,
    /// Service start (after queueing).
    pub start_ns: u64,
    /// Modeled engine time (0 for failed queries).
    pub service_ns: u64,
    /// `start − arrival`.
    pub queue_wait_ns: u64,
    /// `done − arrival`.
    pub latency_ns: u64,
    /// Recovery retries this query needed.
    pub retries: u64,
    /// How it ended.
    pub outcome: Outcome,
}

/// Counts of query outcomes over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Fault-free queries.
    pub clean: usize,
    /// Queries that recovered from injected faults.
    pub recovered: usize,
    /// Queries that completed degraded.
    pub degraded: usize,
    /// Queries ending in a typed device fault.
    pub fault: usize,
    /// Queries ending in another engine error.
    pub error: usize,
}

/// A post-mortem bundle dumped by the flight recorder.
#[derive(Debug, Clone)]
pub struct Postmortem {
    /// Why it was dumped ("typed fault …" or "slo breach …").
    pub reason: String,
    /// The bundle: a valid Chrome trace with a `flightRecorder` header.
    pub json: String,
}

/// Everything a load run produced.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Device name.
    pub device: String,
    /// Arrival process used.
    pub arrival: ArrivalKind,
    /// Offered rate (queries per virtual second).
    pub rate_qps: f64,
    /// Master seed.
    pub seed: u64,
    /// Fault profile name, if injection was armed.
    pub fault_profile: Option<String>,
    /// Per-query records, in arrival order.
    pub records: Vec<QueryRecord>,
    /// Outcome class counts.
    pub outcomes: OutcomeCounts,
    /// Per-algorithm SLO verdicts (order: ld, fastid, mixture).
    pub slo: Vec<SloOutcome>,
    /// Whether any algorithm breached its SLO.
    pub breached: bool,
    /// Stream makespan: the last completion instant (virtual ns).
    pub duration_ns: u64,
    /// Overall p50 across all queries.
    pub p50_all_ns: u64,
    /// Overall p99 across all queries.
    pub p99_all_ns: u64,
    /// Completed-query throughput over the makespan.
    pub achieved_qps: f64,
    /// Merged query-attributed Chrome timeline (when recorded).
    pub timeline: Option<Trace>,
    /// Flight-recorder dump, triggered by the first typed fault or — at
    /// end of run — the first SLO breach.
    pub postmortem: Option<Postmortem>,
}

/// Decorrelates per-query fault streams from the master seed.
fn query_fault_seed(seed: u64, qid: u64) -> u64 {
    seed.wrapping_add((qid + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Replays one seeded query stream. Deterministic: equal configs produce
/// byte-identical reports (all clocks are virtual).
pub fn run(cfg: &LoadConfig) -> LoadReport {
    assert!(!cfg.templates.is_empty(), "no query templates selected");
    assert!(!cfg.tenants.is_empty(), "need at least one tenant label");
    let arrivals = arrival_times(cfg.arrival, cfg.rate_qps, cfg.queries, cfg.seed);
    let set = WorkloadSet::build(cfg.seed);
    let mut pick = StdRng::seed_from_u64(cfg.seed ^ 0xA5A5_5A5A_D00D_F00D);
    let stream = if cfg.record_timeline {
        Tracer::enabled()
    } else {
        Tracer::disabled()
    };
    let stream_track = cfg
        .record_timeline
        .then(|| stream.track("loadgen · queries", TimeDomain::Virtual));
    let recorder = FlightRecorder::new(cfg.flight_capacity);
    let mut merged: Vec<(Trace, u64)> = Vec::new();
    let mut postmortem: Option<Postmortem> = None;

    let mut server_free = 0u64;
    let mut records = Vec::with_capacity(cfg.queries);
    let mut outcomes = OutcomeCounts::default();
    for (qid, &arrival_ns) in arrivals.iter().enumerate() {
        let qid = qid as u64;
        let template = cfg.templates[pick.random_range(0..cfg.templates.len())];
        let tenant = cfg.tenants[qid as usize % cfg.tenants.len()];
        let ctx = QueryCtx::new(qid, tenant);
        let tracer = if cfg.record_timeline {
            Tracer::enabled().with_query_ctx(ctx.clone())
        } else {
            Tracer::disabled()
        };
        let mut engine = GpuEngine::new(cfg.device.clone())
            .with_options(EngineOptions {
                mode: ExecMode::Full,
                double_buffer: true,
                mixture: MixtureStrategy::Direct,
                ..Default::default()
            })
            .with_tracer(tracer.clone());
        if let Some(spec) = &cfg.fault {
            let armed = spec.at_query.is_none_or(|at| at as u64 == qid);
            if armed {
                engine = engine.with_fault_plan(FaultPlan::new(
                    query_fault_seed(cfg.seed, qid),
                    spec.profile,
                ));
            }
        }

        let result = run_query(template, &engine, &set);
        let (service_ns, retries, outcome) = match &result {
            Ok(sr) => {
                let retries = sr.recovery.as_ref().map_or(0, |r| r.retries);
                let outcome = match &sr.recovery {
                    None => Outcome::Clean,
                    Some(r) if r.degraded() => Outcome::Degraded,
                    Some(r) if r.retries + r.corruption_detected + r.stalls_absorbed > 0 => {
                        Outcome::Recovered
                    }
                    Some(_) => Outcome::Clean,
                };
                (sr.service_ns, retries, outcome)
            }
            Err(e) => match e.device_fault() {
                Some(f) => (0, 0, Outcome::Fault(f.kind.name().to_string())),
                None => (0, 0, Outcome::Error(e.to_string())),
            },
        };

        let start_ns = arrival_ns.max(server_free);
        let done_ns = start_ns + service_ns;
        server_free = done_ns;
        let queue_wait_ns = start_ns - arrival_ns;
        let latency_ns = done_ns - arrival_ns;

        metrics::QUERIES.add(1);
        metrics::RETRIES.add(retries);
        if outcome.is_failure() {
            metrics::FAILURES.add(1);
        }
        metrics::latency_for(template.slug()).record(latency_ns);
        metrics::QUEUE_WAIT.record(queue_wait_ns);
        match outcome {
            Outcome::Clean => outcomes.clean += 1,
            Outcome::Recovered => outcomes.recovered += 1,
            Outcome::Degraded => outcomes.degraded += 1,
            Outcome::Fault(_) => outcomes.fault += 1,
            Outcome::Error(_) => outcomes.error += 1,
        }

        if let Some(track) = stream_track {
            stream.span_with(
                track,
                "query",
                format!("q{qid} {}", template.slug()),
                arrival_ns,
                done_ns,
                vec![
                    ("query_id", qid.into()),
                    ("tenant", tenant.into()),
                    ("algorithm", template.slug().into()),
                    ("queue_wait_ns", queue_wait_ns.into()),
                    ("outcome", outcome.label().into()),
                ],
            );
        }
        if let Some(trace) = tracer.snapshot() {
            recorder.absorb(&trace, start_ns);
            merged.push((trace, start_ns));
        }
        if postmortem.is_none() {
            let device_lost = result
                .as_ref()
                .ok()
                .and_then(|sr| sr.recovery.as_ref())
                .is_some_and(|r| r.device_lost);
            let reason = match &outcome {
                Outcome::Fault(kind) => Some(format!("typed fault on query {qid}: {kind}")),
                _ if device_lost => Some(format!(
                    "device lost on query {qid} (completed {})",
                    outcome.label()
                )),
                _ => None,
            };
            if let Some(reason) = reason {
                postmortem = Some(Postmortem {
                    json: recorder.postmortem(&reason, Some(&ctx)),
                    reason,
                });
            }
        }

        records.push(QueryRecord {
            id: qid,
            tenant,
            template,
            arrival_ns,
            start_ns,
            service_ns,
            queue_wait_ns,
            latency_ns,
            retries,
            outcome,
        });
    }

    // Judge each algorithm against its objectives.
    let mut slo = Vec::new();
    for slug in ["ld", "fastid", "mixture"] {
        let of_alg: Vec<&QueryRecord> = records
            .iter()
            .filter(|r| r.template.slug() == slug)
            .collect();
        if of_alg.is_empty() {
            continue;
        }
        let lat: Vec<u64> = of_alg.iter().map(|r| r.latency_ns).collect();
        let qw: Vec<u64> = of_alg.iter().map(|r| r.queue_wait_ns).collect();
        let failed = of_alg.iter().filter(|r| r.outcome.is_failure()).count();
        slo.push(evaluate(
            match slug {
                "ld" => "ld",
                "fastid" => "fastid",
                _ => "mixture",
            },
            &lat,
            &qw,
            failed,
            cfg.slo.for_algorithm(slug),
        ));
    }
    let breached = slo.iter().any(|o| o.breached);
    if breached && postmortem.is_none() && cfg.record_timeline {
        let reasons: Vec<String> = slo
            .iter()
            .filter(|o| o.breached)
            .map(|o| format!("{}: {}", o.algorithm, o.reasons.join("; ")))
            .collect();
        let reason = format!("slo breach: {}", reasons.join(" | "));
        postmortem = Some(Postmortem {
            json: recorder.postmortem(&reason, None),
            reason,
        });
    }

    let timeline = if cfg.record_timeline {
        let mut t = stream.snapshot().unwrap_or_default();
        for (trace, start) in &merged {
            merge_into(&mut t, trace, *start);
        }
        Some(t)
    } else {
        None
    };

    let mut all_lat: Vec<u64> = records.iter().map(|r| r.latency_ns).collect();
    all_lat.sort_unstable();
    let duration_ns = records
        .iter()
        .map(|r| r.start_ns + r.service_ns)
        .max()
        .unwrap_or(0);
    LoadReport {
        device: cfg.device.name.clone(),
        arrival: cfg.arrival,
        rate_qps: cfg.rate_qps,
        seed: cfg.seed,
        fault_profile: cfg.fault.as_ref().map(|f| f.profile_name.clone()),
        outcomes,
        breached,
        duration_ns,
        p50_all_ns: percentile(&all_lat, 50.0),
        p99_all_ns: percentile(&all_lat, 99.0),
        achieved_qps: if duration_ns == 0 {
            0.0
        } else {
            records.len() as f64 * 1e9 / duration_ns as f64
        },
        records,
        slo,
        timeline,
        postmortem,
    }
}

/// One measured offered-load level in a sweep.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// The offered rate at this point.
    pub rate_qps: f64,
    /// The full run report (timeline disabled for sweep points).
    pub report: LoadReport,
}

/// A saturation sweep: the same seeded stream replayed at stepped offered
/// loads, plus the detected latency-vs-throughput knee.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Points in ascending offered-load order.
    pub points: Vec<SweepPoint>,
    /// Index of the first point past the knee (p99 ≥ 2× the lightest
    /// point's p99), if the sweep saturated.
    pub knee: Option<usize>,
}

/// The default offered-load ladder, as multiples of the base rate.
pub const SWEEP_MULTIPLIERS: [f64; 6] = [0.25, 0.5, 1.0, 2.0, 4.0, 8.0];

/// Replays the stream at `multipliers × cfg.rate_qps` and locates the
/// saturation knee. Timeline recording is disabled per point (a sweep is
/// about aggregate latency, not span-level attribution).
pub fn saturation_sweep(cfg: &LoadConfig, multipliers: &[f64]) -> SweepReport {
    let mut points = Vec::with_capacity(multipliers.len());
    for &mult in multipliers {
        let mut point_cfg = cfg.clone();
        point_cfg.rate_qps = cfg.rate_qps * mult;
        point_cfg.record_timeline = false;
        let report = run(&point_cfg);
        points.push(SweepPoint {
            rate_qps: point_cfg.rate_qps,
            report,
        });
    }
    let base_p99 = points.first().map_or(0, |p| p.report.p99_all_ns);
    let knee = points
        .iter()
        .position(|p| base_p99 > 0 && p.report.p99_all_ns >= base_p99.saturating_mul(2));
    SweepReport { points, knee }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snp_gpu_model::devices;
    use snp_trace::chrome;

    fn small_cfg() -> LoadConfig {
        let mut cfg = LoadConfig::new(
            devices::titan_v(),
            vec![Template::Ld, Template::FastIdTopK, Template::Mixture],
        );
        cfg.queries = 24;
        cfg
    }

    #[test]
    fn run_is_deterministic_and_queue_is_consistent() {
        let cfg = small_cfg();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.records.len(), b.records.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.latency_ns, y.latency_ns);
            assert_eq!(x.outcome, y.outcome);
        }
        for r in &a.records {
            assert_eq!(r.latency_ns, r.queue_wait_ns + r.service_ns);
            assert!(r.start_ns >= r.arrival_ns);
        }
        assert_eq!(a.p99_all_ns, b.p99_all_ns);
    }

    #[test]
    fn timeline_validates_and_attributes_queries() {
        let report = run(&small_cfg());
        let timeline = report.timeline.expect("timeline recorded");
        let json = chrome::export_chrome_trace(&timeline);
        chrome::validate(&json).expect("merged timeline is valid");
        // Every engine-run span carries its query id.
        let runs: Vec<_> = timeline.events.iter().filter(|e| e.cat == "run").collect();
        assert!(!runs.is_empty());
        assert!(runs
            .iter()
            .all(|e| e.args.iter().any(|(k, _)| *k == "query_id")));
    }

    #[test]
    fn device_loss_dumps_a_postmortem_with_the_query_id() {
        let mut cfg = small_cfg();
        // The stock `loss` profile drops the device at command #9; the
        // small loadgen workloads finish in fewer host commands, so pull
        // the loss earlier to guarantee it lands.
        cfg.fault = Some(FaultSpec {
            profile_name: "loss".into(),
            profile: FaultProfile {
                device_loss_at: Some(2),
                ..FaultProfile::loss()
            },
            at_query: Some(3),
        });
        let report = run(&cfg);
        // The armed query either surfaced a typed fault (postmortem at
        // fault time) or completed degraded via recovery.
        let armed = &report.records[3];
        assert!(
            armed.outcome != Outcome::Clean,
            "fault plan had no effect: {:?}",
            armed.outcome
        );
        let pm = report.postmortem.as_ref().expect("device loss must dump");
        chrome::validate(&pm.json).expect("postmortem bundle is valid");
        assert!(pm.json.contains("\"query_id\":3"), "dump names the query");
        assert!(pm.reason.contains("query 3"));
    }

    #[test]
    fn saturation_sweep_finds_a_knee_under_overload() {
        let mut cfg = small_cfg();
        cfg.queries = 16;
        // Base rate low; highest multiplier must saturate the server.
        cfg.rate_qps = 500.0;
        let sweep = saturation_sweep(&cfg, &[1.0, 64.0, 4096.0]);
        assert_eq!(sweep.points.len(), 3);
        let p99s: Vec<u64> = sweep.points.iter().map(|p| p.report.p99_all_ns).collect();
        assert!(
            p99s.last().unwrap() > p99s.first().unwrap(),
            "overload did not raise p99: {p99s:?}"
        );
        assert!(sweep.knee.is_some(), "no knee found: {p99s:?}");
    }
}
