//! `snp-load`: a deterministic, seedable open-loop load generator for the
//! SNP engine, with admission control, latency SLOs, saturation sweeps,
//! and flight-recorder post-mortems.
//!
//! The paper's operational setting is interactive forensic search: what
//! matters is per-query latency under concurrent load, not just kernel
//! throughput. This crate poses as that traffic:
//!
//! * [`arrival`] — Poisson and bursty open-loop arrival processes on the
//!   simulator's virtual clock, fully determined by `(kind, rate, seed)`.
//! * [`workload`] — query templates (LD scan, FastID identity search via
//!   full-γ *and* streaming top-k readback, mixture analysis) over shared
//!   seeded data sets, each executing in `ExecMode::Full`, with brownout
//!   service tiers and result digests for the silent-corruption oracle.
//! * [`admission`] — per-tenant token-bucket quotas, SLO-derived deadlines,
//!   typed shedding with a provable feasibility bound, and the hysteretic
//!   brownout controller (full → reduced top-k → CPU-only).
//! * [`scheduler`] — weighted fair queueing across tenants with
//!   earliest-deadline-first dispatch within each tenant; runs in FIFO
//!   policy mode when admission is disabled, reproducing the legacy
//!   single-FIFO server byte-for-byte.
//! * [`runner`] — the replay engine in virtual time, per-query
//!   [`snp_trace::QueryCtx`]-tagged tracers merged into one Chrome
//!   timeline, a bounded [`snp_trace::FlightRecorder`] that dumps a
//!   post-mortem on the first typed fault, shed storm, or SLO breach, and a
//!   saturation sweep that steps offered load until the latency knee
//!   appears.
//! * [`slo`] — per-algorithm latency objectives and error-budget burn,
//!   judged on exact (not bucketed) percentiles.
//! * [`report`] — byte-reproducible `slo-report.json` and text rendering.
//!
//! The arrival model, queue semantics, and SLO math are documented in
//! `DESIGN.md` §13; the admission architecture in §15.

#![warn(missing_docs)]

pub mod admission;
pub mod anatomy;
pub mod arrival;
pub mod report;
pub mod runner;
pub mod scheduler;
pub mod slo;
pub mod whatif;
pub mod workload;

pub use admission::{
    AdmissionConfig, BrownoutConfig, BrownoutController, CostModel, ShedReason, TenantQuota, Tier,
    TierTransition, TokenBucket,
};
pub use anatomy::{
    decompose_query, AnatomyReport, BandAnatomy, QueryAnatomy, Segment, SEGMENT_COUNT,
};
pub use arrival::{arrival_times, ArrivalKind};
pub use runner::{
    run, saturation_sweep, AdmissionReport, FaultSpec, LoadConfig, LoadReport, Outcome,
    OutcomeCounts, Postmortem, QueryRecord, SweepPoint, SweepReport, TenantReport,
    SWEEP_MULTIPLIERS,
};
pub use scheduler::{QueuedQuery, Scheduler};
pub use slo::{evaluate, percentile, Slo, SloOutcome, SloPolicy};
pub use snp_core::CostScale;
pub use whatif::{
    default_perturbations, run_whatif, Confirmation, Perturbation, WhatIfOutcome, WhatIfReport,
};
pub use workload::{
    cpu_service_ns, run_query, run_query_tier, templates_for, ServiceReport, Template, WorkloadSet,
    REDUCED_TOPK,
};
