//! Causal what-if profiling: replays the same seeded query stream with one
//! component's **virtual cost** scaled, and measures the causal effect on
//! accepted p50/p99 latency and goodput (DESIGN.md §16).
//!
//! This is the virtual-speedup idea of causal profilers (Coz) made exact:
//! because every clock in the stack is virtual and deterministic, we don't
//! need to slow everything *else* down to emulate a speedup — we rescale
//! the component's modeled duration ([`snp_core::CostScale`]) and replay. Two runs
//! differ **only** in that cost, so any latency/goodput delta is causal by
//! construction, including second-order effects (shorter kernels drain the
//! queue sooner, which changes admission verdicts and brownout pressure).
//! The report ranks perturbations by tail-latency leverage, then confirms
//! the winner with an independent replay under different observation
//! settings — virtual timing must not move under tracing, so predicted and
//! replayed p99 agree to the nanosecond.

use std::fmt::Write as _;

use crate::runner::{run, LoadConfig, LoadReport};

/// One virtual-cost perturbation applied to a replay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Perturbation {
    /// Scale every kernel's modeled duration by this factor.
    KernelScale(f64),
    /// Scale every H2D/D2H transfer's modeled duration by this factor.
    TransferScale(f64),
    /// Scale the admission deadline slack by this factor (more slack
    /// admits queries the feasibility bound would otherwise shed).
    AdmissionSlack(f64),
    /// Flip the scheduler policy (FIFO ↔ WFQ+EDF) relative to the base
    /// config.
    SchedulerFlip,
}

impl Perturbation {
    /// Stable label used in reports and JSON (`kernel-x0.80`, …).
    pub fn label(&self) -> String {
        match self {
            Perturbation::KernelScale(f) => format!("kernel-x{f:.2}"),
            Perturbation::TransferScale(f) => format!("transfer-x{f:.2}"),
            Perturbation::AdmissionSlack(f) => format!("admission-slack-x{f:.2}"),
            Perturbation::SchedulerFlip => "scheduler-flip".to_string(),
        }
    }

    /// Parses the CLI spelling: `kernel:0.8`, `transfer:0.8`, `slack:1.5`,
    /// or `sched`.
    pub fn parse(s: &str) -> Result<Perturbation, String> {
        if s == "sched" {
            return Ok(Perturbation::SchedulerFlip);
        }
        let (kind, factor) = s
            .split_once(':')
            .ok_or_else(|| format!("perturbation {s:?} is not kind:factor or `sched`"))?;
        let f: f64 = factor
            .parse()
            .map_err(|_| format!("perturbation factor {factor:?} is not a number"))?;
        if !(f.is_finite() && f > 0.0) {
            return Err(format!("perturbation factor {f} must be finite and > 0"));
        }
        match kind {
            "kernel" => Ok(Perturbation::KernelScale(f)),
            "transfer" => Ok(Perturbation::TransferScale(f)),
            "slack" => Ok(Perturbation::AdmissionSlack(f)),
            other => Err(format!(
                "unknown perturbation kind {other:?} (kernel, transfer, slack, sched)"
            )),
        }
    }

    /// Applies this perturbation to a replay config.
    fn apply(&self, cfg: &mut LoadConfig) {
        match self {
            Perturbation::KernelScale(f) => cfg.cost_scale.kernel *= f,
            Perturbation::TransferScale(f) => cfg.cost_scale.transfer *= f,
            Perturbation::AdmissionSlack(f) => cfg.admission.deadline_slack *= f,
            Perturbation::SchedulerFlip => {
                let current = cfg.scheduler_fifo.unwrap_or(!cfg.admission.enabled);
                cfg.scheduler_fifo = Some(!current);
            }
        }
    }
}

/// The default three-perturbation panel: 20% kernel speedup, 20% transfer
/// speedup, scheduler-policy flip.
pub fn default_perturbations() -> Vec<Perturbation> {
    vec![
        Perturbation::KernelScale(0.8),
        Perturbation::TransferScale(0.8),
        Perturbation::SchedulerFlip,
    ]
}

/// The measured causal effect of one perturbation.
#[derive(Debug, Clone)]
pub struct WhatIfOutcome {
    /// Perturbation label.
    pub label: String,
    /// Accepted p50 under the perturbation.
    pub p50_ns: u64,
    /// Accepted p99 under the perturbation.
    pub p99_ns: u64,
    /// Goodput under the perturbation (deadline-met completions per
    /// virtual second under admission, completed throughput otherwise).
    pub goodput_qps: f64,
    /// `baseline p50 − perturbed p50` (positive = faster).
    pub p50_delta_ns: i64,
    /// `baseline p99 − perturbed p99` (positive = faster).
    pub p99_delta_ns: i64,
    /// Goodput change (positive = more goodput).
    pub goodput_delta_qps: f64,
    /// p99 delta as a fraction of the baseline p99 — the ranking key.
    pub p99_improvement: f64,
}

/// The confirmation replay of the top-ranked perturbation.
#[derive(Debug, Clone)]
pub struct Confirmation {
    /// Which perturbation was confirmed.
    pub label: String,
    /// The p99 the ranked what-if replay predicted.
    pub predicted_p99_ns: u64,
    /// The p99 an independent replay (timeline + anatomy enabled, so the
    /// observation settings differ) actually measured.
    pub replayed_p99_ns: u64,
    /// `|predicted − replayed| / replayed` (0 when both are 0).
    pub relative_error: f64,
    /// Whether the prediction held within the 5% acceptance bound. In a
    /// deterministic virtual-time simulator this must be exact — any drift
    /// means observation is perturbing the timing model.
    pub within_5_percent: bool,
}

/// A ranked speedup-leverage report over one base config.
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// Device name.
    pub device: String,
    /// Master seed of every replay.
    pub seed: u64,
    /// Stream length.
    pub queries: usize,
    /// Offered rate.
    pub rate_qps: f64,
    /// Accepted p50 of the unperturbed baseline.
    pub baseline_p50_ns: u64,
    /// Accepted p99 of the unperturbed baseline.
    pub baseline_p99_ns: u64,
    /// Baseline goodput.
    pub baseline_goodput_qps: f64,
    /// Perturbation outcomes, ranked by p99 improvement (best first; ties
    /// break by label so the order is total and reproducible).
    pub outcomes: Vec<WhatIfOutcome>,
    /// Confirmation replay of the top-ranked perturbation.
    pub confirmation: Confirmation,
}

fn goodput_of(report: &LoadReport) -> f64 {
    match &report.admission {
        Some(a) => a.goodput_qps,
        None => report.achieved_qps,
    }
}

/// Replays `cfg` once per perturbation (plus the baseline) and ranks the
/// causal p99 leverage. Every replay shares the seed, so the offered
/// stream is identical; only the scaled cost differs.
pub fn run_whatif(base: &LoadConfig, perturbations: &[Perturbation]) -> WhatIfReport {
    assert!(!perturbations.is_empty(), "need at least one perturbation");
    // Replays are about timing, not artifacts: strip observation costs.
    let mut quiet = base.clone();
    quiet.record_timeline = false;
    quiet.anatomy = false;

    let baseline = run(&quiet);
    let (base_p50, base_p99) = (baseline.p50_all_ns, baseline.p99_all_ns);
    let base_goodput = goodput_of(&baseline);

    let mut outcomes: Vec<WhatIfOutcome> = perturbations
        .iter()
        .map(|p| {
            let mut cfg = quiet.clone();
            p.apply(&mut cfg);
            let report = run(&cfg);
            let goodput = goodput_of(&report);
            WhatIfOutcome {
                label: p.label(),
                p50_ns: report.p50_all_ns,
                p99_ns: report.p99_all_ns,
                goodput_qps: goodput,
                p50_delta_ns: base_p50 as i64 - report.p50_all_ns as i64,
                p99_delta_ns: base_p99 as i64 - report.p99_all_ns as i64,
                goodput_delta_qps: goodput - base_goodput,
                p99_improvement: if base_p99 == 0 {
                    0.0
                } else {
                    (base_p99 as i64 - report.p99_all_ns as i64) as f64 / base_p99 as f64
                },
            }
        })
        .collect();
    outcomes.sort_by(|a, b| {
        b.p99_delta_ns
            .cmp(&a.p99_delta_ns)
            .then_with(|| a.label.cmp(&b.label))
    });

    // Confirm the winner with an independent replay under *different*
    // observation settings: timeline and anatomy on. Virtual timing must
    // be invariant under tracing, so predicted == replayed.
    let top = &outcomes[0];
    let top_perturbation = perturbations
        .iter()
        .find(|p| p.label() == top.label)
        .expect("top outcome corresponds to an input perturbation");
    let mut confirm_cfg = base.clone();
    confirm_cfg.record_timeline = true;
    confirm_cfg.anatomy = true;
    top_perturbation.apply(&mut confirm_cfg);
    let replayed = run(&confirm_cfg);
    let (predicted, actual) = (top.p99_ns, replayed.p99_all_ns);
    let relative_error = if actual == 0 {
        if predicted == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        predicted.abs_diff(actual) as f64 / actual as f64
    };
    let confirmation = Confirmation {
        label: top.label.clone(),
        predicted_p99_ns: predicted,
        replayed_p99_ns: actual,
        relative_error,
        within_5_percent: relative_error <= 0.05,
    };

    WhatIfReport {
        device: quiet.device.name.clone(),
        seed: quiet.seed,
        queries: quiet.queries,
        rate_qps: quiet.rate_qps,
        baseline_p50_ns: base_p50,
        baseline_p99_ns: base_p99,
        baseline_goodput_qps: base_goodput,
        outcomes,
        confirmation,
    }
}

impl WhatIfReport {
    /// Byte-reproducible JSON (fixed key order, fixed-precision floats, no
    /// wall-clock content).
    pub fn to_json(&self) -> String {
        let outcomes: Vec<String> = self
            .outcomes
            .iter()
            .map(|o| {
                format!(
                    concat!(
                        "{{\"label\":\"{label}\",\"p50_ns\":{p50},\"p99_ns\":{p99},",
                        "\"goodput_qps\":{gq:.3},\"p50_delta_ns\":{d50},",
                        "\"p99_delta_ns\":{d99},\"goodput_delta_qps\":{dgq:.3},",
                        "\"p99_improvement\":{imp:.6}}}"
                    ),
                    label = o.label,
                    p50 = o.p50_ns,
                    p99 = o.p99_ns,
                    gq = o.goodput_qps,
                    d50 = o.p50_delta_ns,
                    d99 = o.p99_delta_ns,
                    dgq = o.goodput_delta_qps,
                    imp = o.p99_improvement,
                )
            })
            .collect();
        let c = &self.confirmation;
        format!(
            concat!(
                "{{\"schema_version\":1,\"tool\":\"snpgpu whatif\",",
                "\"device\":\"{device}\",\"seed\":{seed},\"queries\":{queries},",
                "\"rate_qps\":{rate:.3},",
                "\"baseline\":{{\"p50_ns\":{bp50},\"p99_ns\":{bp99},",
                "\"goodput_qps\":{bgq:.3}}},",
                "\"perturbations\":[{outcomes}],",
                "\"confirmation\":{{\"label\":\"{clabel}\",",
                "\"predicted_p99_ns\":{cpred},\"replayed_p99_ns\":{creal},",
                "\"relative_error\":{cerr:.6},\"within_5_percent\":{cok}}}}}\n"
            ),
            device = self.device,
            seed = self.seed,
            queries = self.queries,
            rate = self.rate_qps,
            bp50 = self.baseline_p50_ns,
            bp99 = self.baseline_p99_ns,
            bgq = self.baseline_goodput_qps,
            outcomes = outcomes.join(","),
            clabel = c.label,
            cpred = c.predicted_p99_ns,
            creal = c.replayed_p99_ns,
            cerr = c.relative_error,
            cok = c.within_5_percent,
        )
    }

    /// The human-readable speedup-leverage table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "what-if: {} queries on {} at {:.0} q/s (seed {}), {} perturbation(s)",
            self.queries,
            self.device,
            self.rate_qps,
            self.seed,
            self.outcomes.len()
        );
        let _ = writeln!(
            out,
            "baseline: p50 {:.3} ms, p99 {:.3} ms, goodput {:.0} q/s",
            self.baseline_p50_ns as f64 / 1e6,
            self.baseline_p99_ns as f64 / 1e6,
            self.baseline_goodput_qps
        );
        let _ = writeln!(
            out,
            "{:<4} {:<22} {:>10} {:>10} {:>11} {:>12}",
            "rank", "perturbation", "p50 ms", "p99 ms", "p99 change", "goodput q/s"
        );
        for (i, o) in self.outcomes.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:<4} {:<22} {:>10.3} {:>10.3} {:>10.1}% {:>12.0}",
                i + 1,
                o.label,
                o.p50_ns as f64 / 1e6,
                o.p99_ns as f64 / 1e6,
                o.p99_improvement * 100.0,
                o.goodput_qps
            );
        }
        let c = &self.confirmation;
        let _ = writeln!(
            out,
            "confirmation: {} replayed at p99 {:.3} ms vs predicted {:.3} ms \
             ({:.3}% error, {})",
            c.label,
            c.replayed_p99_ns as f64 / 1e6,
            c.predicted_p99_ns as f64 / 1e6,
            c.relative_error * 100.0,
            if c.within_5_percent {
                "within 5%"
            } else {
                "OUT OF BOUNDS"
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::admission::AdmissionConfig;
    use crate::arrival::ArrivalKind;
    use crate::workload::Template;
    use snp_gpu_model::devices;

    fn base_cfg() -> LoadConfig {
        let mut cfg = LoadConfig::new(
            devices::titan_v(),
            vec![Template::Ld, Template::FastIdTopK, Template::Mixture],
        );
        cfg.queries = 24;
        cfg.rate_qps = 8_000.0; // queueing pressure so speedups compound
        cfg.record_timeline = false;
        cfg
    }

    #[test]
    fn kernel_speedup_has_causal_p99_leverage() {
        let report = run_whatif(&base_cfg(), &default_perturbations());
        let kernel = report
            .outcomes
            .iter()
            .find(|o| o.label == "kernel-x0.80")
            .expect("kernel outcome present");
        assert!(
            kernel.p99_delta_ns > 0,
            "20% kernel speedup must cut tail latency: {:?}",
            kernel
        );
        assert!(kernel.p99_improvement > 0.0);
        // The ranking is by p99 leverage, best first.
        for w in report.outcomes.windows(2) {
            assert!(w[0].p99_delta_ns >= w[1].p99_delta_ns);
        }
    }

    #[test]
    fn confirmation_replay_matches_prediction_exactly() {
        let report = run_whatif(&base_cfg(), &default_perturbations());
        let c = &report.confirmation;
        assert!(c.within_5_percent, "{c:?}");
        // Determinism is stronger than the 5% bar: observation settings
        // (timeline + anatomy) must not move virtual time at all.
        assert_eq!(c.predicted_p99_ns, c.replayed_p99_ns, "{c:?}");
        assert_eq!(c.relative_error, 0.0);
    }

    #[test]
    fn json_is_byte_reproducible_and_parses() {
        let a = run_whatif(&base_cfg(), &default_perturbations()).to_json();
        let b = run_whatif(&base_cfg(), &default_perturbations()).to_json();
        assert_eq!(a, b);
        let doc = snp_trace::json::parse(&a).expect("valid JSON");
        let obj = doc.as_obj().unwrap();
        assert_eq!(obj["schema_version"].as_num(), Some(1.0));
        assert_eq!(obj["perturbations"].as_arr().unwrap().len(), 3);
        assert!(obj["confirmation"].as_obj().is_some());
        assert!(a.contains("\"within_5_percent\":true"), "{a}");
        let text = run_whatif(&base_cfg(), &default_perturbations()).render_text();
        assert!(text.contains("confirmation:"), "{text}");
    }

    #[test]
    fn admission_slack_perturbation_runs_under_admission() {
        let mut cfg = base_cfg();
        cfg.queries = 48;
        cfg.arrival = ArrivalKind::Bursty;
        cfg.rate_qps = 64_000.0;
        cfg.admission = AdmissionConfig::standard();
        let perturbations = vec![
            Perturbation::AdmissionSlack(1.5),
            Perturbation::KernelScale(0.8),
        ];
        let report = run_whatif(&cfg, &perturbations);
        assert_eq!(report.outcomes.len(), 2);
        assert!(report.baseline_goodput_qps > 0.0);
        assert!(report.confirmation.within_5_percent);
    }

    #[test]
    fn perturbation_parsing_round_trips_and_rejects_junk() {
        assert_eq!(
            Perturbation::parse("kernel:0.8").unwrap(),
            Perturbation::KernelScale(0.8)
        );
        assert_eq!(
            Perturbation::parse("transfer:0.5").unwrap(),
            Perturbation::TransferScale(0.5)
        );
        assert_eq!(
            Perturbation::parse("slack:1.5").unwrap(),
            Perturbation::AdmissionSlack(1.5)
        );
        assert_eq!(
            Perturbation::parse("sched").unwrap(),
            Perturbation::SchedulerFlip
        );
        assert!(Perturbation::parse("kernel").is_err());
        assert!(Perturbation::parse("warp:0.5").is_err());
        assert!(Perturbation::parse("kernel:-1").is_err());
        assert!(Perturbation::parse("kernel:zero").is_err());
    }

    #[test]
    fn scheduler_flip_toggles_relative_to_base() {
        let mut cfg = base_cfg();
        Perturbation::SchedulerFlip.apply(&mut cfg);
        assert_eq!(cfg.scheduler_fifo, Some(false), "FIFO base flips to WFQ");
        let mut adm = base_cfg();
        adm.admission = AdmissionConfig::standard();
        Perturbation::SchedulerFlip.apply(&mut adm);
        assert_eq!(adm.scheduler_fifo, Some(true), "WFQ base flips to FIFO");
    }
}
