//! The two-level dispatch queue: weighted fair queueing **across** tenants,
//! earliest-deadline-first **within** each tenant.
//!
//! Each tenant owns an EDF heap keyed by `(deadline, seq)` — `seq` (the
//! stream-wide query id) breaks ties deterministically. Across tenants the
//! scheduler runs least-attained-normalized-service fair queueing: each
//! grant charges `est / weight` of virtual service to the tenant it went
//! to, and the non-empty tenant with the least attained virtual service is
//! served next (ties by tenant index), so long-run service shares converge
//! to the weights. A tenant that was idle re-enters at the current virtual
//! time — idling never banks credit.
//!
//! With admission disabled the same structure runs in **FIFO policy
//! mode**: dispatch strictly by `seq`, which reproduces the PR 7
//! single-FIFO server exactly — the scheduler replaces the FIFO
//! structurally, while the legacy behavior stays byte-identical.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::workload::Template;

/// One admitted query waiting for dispatch. The `Ord` impl follows field
/// order (`seq` first), but the scheduler only ever orders entries by their
/// explicit `(deadline, seq)` EDF key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QueuedQuery {
    /// Stream-wide query id (also the arrival-order sequence number).
    pub seq: u64,
    /// Index into the run's tenant list.
    pub tenant: usize,
    /// Template to run.
    pub template: Template,
    /// Arrival instant (virtual ns).
    pub arrival_ns: u64,
    /// Absolute deadline (virtual ns; `u64::MAX` when admission is off).
    pub deadline_ns: u64,
    /// Calibrated clean-run service estimate (virtual ns).
    pub est_ns: u64,
}

/// EDF key: earliest deadline first, ties by arrival sequence.
type EdfKey = (u64, u64);

#[derive(Debug)]
struct TenantLane {
    weight: f64,
    /// Min-heap over `(deadline, seq)`, carrying the queued query.
    heap: BinaryHeap<Reverse<(EdfKey, QueuedQuery)>>,
    /// Attained virtual service: advances by `est / weight` per grant.
    vfinish: f64,
}

/// The dispatch queue. See the module docs for the policy.
#[derive(Debug)]
pub struct Scheduler {
    lanes: Vec<TenantLane>,
    /// Global virtual time: the largest virtual start granted so far.
    /// Lanes going from idle to busy re-enter at this value.
    vtime: f64,
    len: usize,
    /// FIFO policy mode: dispatch strictly by `seq` (admission disabled).
    fifo: bool,
}

impl Scheduler {
    /// A scheduler over `weights.len()` tenant lanes. `fifo: true` ignores
    /// weights and deadlines and dispatches in arrival order.
    pub fn new(weights: &[f64], fifo: bool) -> Scheduler {
        assert!(!weights.is_empty(), "need at least one tenant lane");
        Scheduler {
            lanes: weights
                .iter()
                .map(|&w| {
                    assert!(w > 0.0, "tenant weights must be positive");
                    TenantLane {
                        weight: w,
                        heap: BinaryHeap::new(),
                        vfinish: 0.0,
                    }
                })
                .collect(),
            vtime: 0.0,
            len: 0,
            fifo,
        }
    }

    /// Queued queries across all tenants.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Queued queries for one tenant.
    pub fn tenant_depth(&self, tenant: usize) -> usize {
        self.lanes[tenant].heap.len()
    }

    /// Enqueues an admitted query.
    pub fn push(&mut self, q: QueuedQuery) {
        let lane = &mut self.lanes[q.tenant];
        if lane.heap.is_empty() {
            // Idle → busy: re-enter at the current virtual time so idle
            // periods never bank service credit.
            lane.vfinish = lane.vfinish.max(self.vtime);
        }
        lane.heap.push(Reverse(((q.deadline_ns, q.seq), q)));
        self.len += 1;
    }

    /// Sum of service estimates of queued same-tenant queries that EDF
    /// will dispatch **before** a query with key `(deadline_ns, seq)` —
    /// the tenant-local backlog term of the admission feasibility bound.
    pub fn backlog_before(&self, tenant: usize, deadline_ns: u64, seq: u64) -> u64 {
        self.lanes[tenant]
            .heap
            .iter()
            .filter(|Reverse((key, _))| *key < (deadline_ns, seq))
            .map(|Reverse((_, q))| q.est_ns)
            .sum()
    }

    /// Dispatches the next query, or `None` when idle.
    pub fn pop(&mut self) -> Option<QueuedQuery> {
        if self.len == 0 {
            return None;
        }
        let lane_idx = if self.fifo {
            // FIFO policy: the lane whose head has the smallest seq.
            self.lanes
                .iter()
                .enumerate()
                .filter_map(|(i, l)| l.heap.peek().map(|Reverse((key, _))| (key.1, i)))
                .min()
                .map(|(_, i)| i)?
        } else {
            // Least attained virtual service wins (ties by lane index).
            let mut best: Option<(f64, usize)> = None;
            for (i, lane) in self.lanes.iter().enumerate() {
                if lane.heap.is_empty() {
                    continue;
                }
                if best.is_none_or(|(v, _)| lane.vfinish < v) {
                    best = Some((lane.vfinish, i));
                }
            }
            best.map(|(_, i)| i)?
        };
        let lane = &mut self.lanes[lane_idx];
        let Reverse((_, q)) = lane.heap.pop()?;
        self.len -= 1;
        if !self.fifo {
            let start = lane.vfinish;
            lane.vfinish = start + q.est_ns as f64 / lane.weight;
            self.vtime = self.vtime.max(start);
        }
        Some(q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(seq: u64, tenant: usize, deadline_ns: u64, est_ns: u64) -> QueuedQuery {
        QueuedQuery {
            seq,
            tenant,
            template: Template::Ld,
            arrival_ns: 0,
            deadline_ns,
            est_ns,
        }
    }

    #[test]
    fn fifo_mode_dispatches_in_arrival_order_across_tenants() {
        let mut s = Scheduler::new(&[1.0, 1.0], true);
        for seq in [3u64, 0, 2, 1] {
            s.push(q(seq, (seq % 2) as usize, u64::MAX, 100));
        }
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|q| q.seq).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
        assert!(s.is_empty());
    }

    #[test]
    fn edf_orders_within_a_tenant() {
        let mut s = Scheduler::new(&[1.0], false);
        s.push(q(0, 0, 500, 10));
        s.push(q(1, 0, 100, 10));
        s.push(q(2, 0, 100, 10)); // same deadline: seq breaks the tie
        s.push(q(3, 0, 300, 10));
        let order: Vec<u64> = std::iter::from_fn(|| s.pop()).map(|q| q.seq).collect();
        assert_eq!(order, vec![1, 2, 3, 0]);
    }

    #[test]
    fn wfq_shares_service_by_weight() {
        // Tenant 0 at weight 3 should get ~3x tenant 1's dispatches from a
        // saturated queue.
        let mut s = Scheduler::new(&[3.0, 1.0], false);
        for seq in 0..40 {
            s.push(q(seq, (seq % 2) as usize, u64::MAX, 100));
        }
        let first16: Vec<usize> = (0..16).filter_map(|_| s.pop()).map(|q| q.tenant).collect();
        let t0 = first16.iter().filter(|&&t| t == 0).count();
        assert_eq!(t0, 12, "weight-3 tenant gets 3/4 of service: {first16:?}");
    }

    #[test]
    fn equal_weights_interleave_fairly() {
        let mut s = Scheduler::new(&[1.0, 1.0], false);
        for seq in 0..8 {
            s.push(q(seq, (seq % 2) as usize, u64::MAX, 100));
        }
        let tenants: Vec<usize> = std::iter::from_fn(|| s.pop()).map(|q| q.tenant).collect();
        let t0 = tenants.iter().filter(|&&t| t == 0).count();
        assert_eq!(t0, 4);
    }

    #[test]
    fn backlog_counts_only_earlier_edf_keys_of_the_same_tenant() {
        let mut s = Scheduler::new(&[1.0, 1.0], false);
        s.push(q(0, 0, 100, 10));
        s.push(q(1, 0, 300, 20));
        s.push(q(2, 1, 50, 40)); // other tenant: not counted
        assert_eq!(s.backlog_before(0, 200, 5), 10);
        assert_eq!(s.backlog_before(0, 400, 5), 30);
        assert_eq!(s.backlog_before(0, 300, 0), 10, "seq tiebreak respected");
        assert_eq!(s.backlog_before(1, u64::MAX, u64::MAX), 40);
    }

    #[test]
    fn idle_tenant_reenters_at_current_virtual_time() {
        let mut s = Scheduler::new(&[1.0, 1.0], false);
        // Tenant 0 works alone for a while…
        for seq in 0..6 {
            s.push(q(seq, 0, u64::MAX, 100));
        }
        for _ in 0..6 {
            s.pop();
        }
        // …then tenant 1 shows up. It must not get 6 back-to-back grants
        // out of banked credit: service alternates immediately.
        for seq in 6..12 {
            s.push(q(seq, (seq % 2) as usize, u64::MAX, 100));
        }
        let tenants: Vec<usize> = (0..4).filter_map(|_| s.pop()).map(|q| q.tenant).collect();
        assert_eq!(
            tenants.iter().filter(|&&t| t == 1).count(),
            2,
            "{tenants:?}"
        );
    }
}
