//! # snp-gpu-model — the model GPU architecture
//!
//! The paper's portability story rests on an abstract *model GPU* (§IV-A)
//! characterized by a handful of parameters: thread-group size `N_T`,
//! compute cores `N_c`, compute clusters `N_cl`, per-instruction functional
//! units `N_fn` with latency `L_fn`, banked shared memory
//! (`N_shared`, `N_b`), and vector width `N_vec`. This crate provides:
//!
//! * [`DeviceSpec`] / [`PipelineSpec`] — the machine-readable form of that
//!   model, including pipeline sharing (Vega's shared ADD/AND/NOT pipe vs
//!   NVIDIA's fused AND-NOT), memory and transfer models;
//! * [`devices`] — Table I as data: GTX 980, Titan V, Vega 64, and the
//!   Xeon E5-2620 v2 reference expressed in the same vocabulary;
//! * [`peak`](crate::peak::peak) — theoretical peak calculators (the dotted
//!   lines of Fig. 5);
//! * [`config`] — the analytical software-parameter model of §V-A
//!   (Eqs. 4–7) deriving `m_c`, `m_r`, `k_c`, `n_r` and the core grid;
//! * [`presets`] — Table II verbatim, cross-checked against the model.
//!
//! ```
//! use snp_gpu_model::{devices, peak::peak, instr::WordOpKind};
//!
//! let titan = devices::titan_v();
//! let p = peak(&titan, WordOpKind::And);
//! // 4 popc lanes x 4 clusters x 80 cores x 1.455 GHz:
//! assert!((p.word_ops_per_sec / 1e9 - 1862.4).abs() < 1.0);
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod devices;
pub mod instr;
pub mod peak;
pub mod presets;

pub use config::{Algorithm, KernelConfig, McRule, ProblemShape};
pub use device::{DeviceSpec, MatrixUnitSpec, MemoryModel, PipelineSpec, TransferModel, Vendor};
pub use instr::{InstrClass, WordOpKind};
