//! Device specifications for the model GPU architecture (paper §IV-A and
//! Table I).

use crate::instr::InstrClass;

/// Hardware vendor, used only for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Vendor {
    /// NVIDIA GPUs (thread groups are warps of 32).
    Nvidia,
    /// AMD GPUs (thread groups are wavefronts of 64).
    Amd,
    /// A CPU expressed in the same model vocabulary (Table I column 1).
    Cpu,
}

/// One execution pipeline inside a compute cluster.
///
/// A pipeline owns `lanes` functional units (`N_fn` in the paper) and serves
/// a set of instruction classes. Instructions of classes that *share* a
/// pipeline contend for its issue slots — the mechanism behind the paper's
/// Vega AND/ADD/NOT observation (§V-D, §VI-E-1).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSpec {
    /// Human-readable name ("alu", "popc", "lsu", …).
    pub name: String,
    /// Number of functional units (`N_fn`) per compute cluster.
    pub lanes: u32,
    /// Instruction classes issued to this pipeline.
    pub classes: Vec<InstrClass>,
}

impl PipelineSpec {
    /// Convenience constructor.
    pub fn new(name: &str, lanes: u32, classes: &[InstrClass]) -> Self {
        assert!(lanes > 0, "pipeline {name} must have at least one lane");
        PipelineSpec {
            name: name.to_string(),
            lanes,
            classes: classes.to_vec(),
        }
    }
}

/// Modeled memory-system behaviour.
///
/// `scaling_knee`/`scaling_exponent` encode the per-core efficiency loss the
/// paper *observes but does not model* (§VI-C, Fig. 7): per-core throughput
/// is flat up to `scaling_knee` active cores and decays as
/// `(knee / n)^exponent` beyond it. NVIDIA devices use exponents near zero
/// (Titan V ≈ flat, GTX 980 ≈ 90 % at 16 cores); Vega 64's knee of 8 and
/// larger exponent reproduce its collapse. See DESIGN.md §6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Nominal DRAM bandwidth in GiB/s.
    pub dram_bandwidth_gib_s: f64,
    /// Fraction of nominal bandwidth achievable by streaming kernels.
    pub dram_efficiency: f64,
    /// Global-memory load latency in cycles (detailed engine only).
    pub global_latency_cycles: u32,
    /// Shared-memory load latency in cycles (detailed engine only).
    pub shared_latency_cycles: u32,
    /// Active-core count up to which per-core throughput is flat.
    pub scaling_knee: u32,
    /// Decay exponent of per-core efficiency beyond the knee (0 = flat).
    pub scaling_exponent: f64,
}

impl MemoryModel {
    /// Per-core efficiency multiplier when `active_cores` cores run the
    /// kernel concurrently; 1.0 at or below the knee.
    pub fn core_scaling_efficiency(&self, active_cores: u32) -> f64 {
        let n = active_cores.max(1);
        if n <= self.scaling_knee || self.scaling_exponent == 0.0 {
            1.0
        } else {
            (self.scaling_knee as f64 / n as f64).powf(self.scaling_exponent)
        }
    }

    /// Achievable streaming bandwidth in bytes/second.
    pub fn effective_bandwidth_bytes_s(&self) -> f64 {
        self.dram_bandwidth_gib_s * self.dram_efficiency * (1u64 << 30) as f64
    }
}

/// A 1-bit matrix unit (tensor-core style) attached to a device.
///
/// One [`InstrClass::Mma`] instruction drives the whole thread group through
/// a `frag_m × frag_n` output fragment over `frag_k_bits` bits of the shared
/// dimension: `acc[i][j] += popc(op(a_row_i, b_col_j))` with `op` the b1
/// AND/XOR combine (Epi4Tensor-style `b1` tensor-core ops). Expressed in the
/// paper's vocabulary this is just another functional unit with its own
/// `N_fn` (the serving pipeline's lanes) and `L_fn` (`latency_cycles`); the
/// fragment shape determines how many packed word-ops one issue retires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MatrixUnitSpec {
    /// Output-fragment rows per MMA instruction.
    pub frag_m: u32,
    /// Output-fragment columns per MMA instruction.
    pub frag_n: u32,
    /// Shared-dimension bits consumed per MMA instruction.
    pub frag_k_bits: u32,
    /// Result latency of one MMA instruction in cycles (the matrix unit's
    /// own `L_fn`; usually longer than the scalar `l_fn`).
    pub latency_cycles: u32,
}

impl MatrixUnitSpec {
    /// Shared-dimension *words* one MMA instruction consumes on a device
    /// computing on `word_bits`-bit packed words.
    pub fn frag_k_words(&self, word_bits: u32) -> u32 {
        self.frag_k_bits / word_bits
    }

    /// Packed word-ops one MMA instruction retires:
    /// `frag_m × frag_n × frag_k_bits / word_bits` — the currency of the
    /// Eq. 4–7 peak model.
    pub fn word_ops_per_instr(&self, word_bits: u32) -> u64 {
        self.frag_m as u64 * self.frag_n as u64 * self.frag_k_words(word_bits) as u64
    }
}

/// Host↔device link and software-overhead model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferModel {
    /// Effective host↔device bandwidth in GiB/s (PCIe 3.0 x16 ≈ 12 GiB/s).
    pub pcie_bandwidth_gib_s: f64,
    /// Fixed per-transfer latency in nanoseconds.
    pub transfer_latency_ns: u64,
    /// Fixed per-kernel-launch overhead in nanoseconds.
    pub kernel_launch_ns: u64,
    /// One-time runtime (OpenCL) initialization cost in nanoseconds —
    /// "on the order of hundreds of milliseconds" (paper §VI-B).
    pub runtime_init_ns: u64,
    /// Host-side packing throughput in GiB/s (bit matrix → transfer buffer).
    pub host_pack_gib_s: f64,
}

impl TransferModel {
    /// Nanoseconds to move `bytes` across the host↔device link.
    pub fn transfer_ns(&self, bytes: u64) -> u64 {
        let bw = self.pcie_bandwidth_gib_s * (1u64 << 30) as f64;
        self.transfer_latency_ns + (bytes as f64 / bw * 1e9).ceil() as u64
    }

    /// Nanoseconds for the host to pack `bytes` of matrix payload.
    pub fn pack_ns(&self, bytes: u64) -> u64 {
        let bw = self.host_pack_gib_s * (1u64 << 30) as f64;
        (bytes as f64 / bw * 1e9).ceil() as u64
    }
}

/// A complete model-GPU description: everything Table I records, plus the
/// pipeline map, memory model and transfer model.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name ("GTX 980", "Titan V", "Vega 64", …).
    pub name: String,
    /// Vendor (determines thread-group terminology only).
    pub vendor: Vendor,
    /// Microarchitecture name ("Maxwell", "Volta", "Vega (GCN5)", …).
    pub microarchitecture: String,
    /// Clock frequency in GHz (maximum reported, per §VI-A-2).
    pub frequency_ghz: f64,
    /// Threads per thread group (`N_T`): warp = 32, wavefront = 64.
    pub n_t: u32,
    /// Maximum resident thread groups per compute core (`N_grp`).
    pub max_thread_groups: u32,
    /// Compute cores (`N_c`): SMs / compute units.
    pub n_cores: u32,
    /// Compute clusters per core (`N_cl`).
    pub n_clusters: u32,
    /// Execution pipelines per cluster.
    pub pipelines: Vec<PipelineSpec>,
    /// Arithmetic instruction latency in cycles (`L_fn`; the paper assumes
    /// one latency for all arithmetic classes, keyed on popcount).
    pub l_fn: u32,
    /// Global memory capacity in bytes.
    pub global_mem_bytes: u64,
    /// Largest single allocation in bytes (`CL_DEVICE_MAX_MEM_ALLOC_SIZE`).
    pub max_alloc_bytes: u64,
    /// Shared memory per core in bytes (`N_shared`).
    pub shared_mem_bytes: u32,
    /// Shared memory bytes unavailable to kernels (NVIDIA's OpenCL reserves
    /// a few bytes — paper §V-E — which is why `k_c` is 383, not 384).
    pub shared_mem_reserved_bytes: u32,
    /// Shared-memory banks (`N_b`).
    pub shared_banks: u32,
    /// 32-bit registers per core.
    pub registers_per_core: u32,
    /// Maximum registers addressable by one thread.
    pub max_regs_per_thread: u32,
    /// Elements a thread loads/stores at once (`N_vec`, paper Eq. 4).
    pub n_vec: u32,
    /// Bits per packed element the device computes on (32 for the GPUs,
    /// 64 for the modeled CPU).
    pub word_bits: u32,
    /// True when the device fuses AND-NOT into one logic issue (NVIDIA LOP3).
    pub fused_andnot: bool,
    /// Memory-system model.
    pub memory: MemoryModel,
    /// Host link / overhead model.
    pub transfer: TransferModel,
    /// 1-bit matrix unit (tensor-core style), if the device has one. A
    /// device with a matrix unit must also map [`InstrClass::Mma`] onto one
    /// of its pipelines (checked by [`DeviceSpec::validate`]).
    pub matrix_unit: Option<MatrixUnitSpec>,
}

impl DeviceSpec {
    /// The pipeline serving `class`, if any.
    pub fn pipeline_for(&self, class: InstrClass) -> Option<&PipelineSpec> {
        self.pipelines.iter().find(|p| p.classes.contains(&class))
    }

    /// Index of the pipeline serving `class`.
    pub fn pipeline_index_for(&self, class: InstrClass) -> Option<usize> {
        self.pipelines
            .iter()
            .position(|p| p.classes.contains(&class))
    }

    /// `N_fn` for an instruction class (functional units per cluster), or
    /// `None` if the device cannot execute it.
    pub fn n_fn(&self, class: InstrClass) -> Option<u32> {
        self.pipeline_for(class).map(|p| p.lanes)
    }

    /// Issue cycles one thread-group instruction of `class` occupies its
    /// pipeline: `ceil(N_T / N_fn)`.
    pub fn issue_cycles(&self, class: InstrClass) -> u32 {
        let lanes = self
            .n_fn(class)
            .unwrap_or_else(|| panic!("device {} has no pipeline for {class}", self.name));
        self.n_t.div_ceil(lanes)
    }

    /// Result latency in cycles for `class` — `max(T_issue, L_fn)` for
    /// arithmetic, the memory-model latencies for loads (see DESIGN.md §3).
    pub fn result_latency(&self, class: InstrClass) -> u32 {
        match class {
            InstrClass::LoadGlobal => self.memory.global_latency_cycles,
            InstrClass::LoadShared => self.memory.shared_latency_cycles,
            InstrClass::StoreGlobal | InstrClass::StoreShared => self.issue_cycles(class),
            // The matrix unit has its own L_fn, independent of the scalar
            // arithmetic latency.
            InstrClass::Mma => {
                let l = self
                    .matrix_unit
                    .map(|m| m.latency_cycles)
                    .unwrap_or(self.l_fn);
                self.issue_cycles(class).max(l)
            }
            _ => self.issue_cycles(class).max(self.l_fn),
        }
    }

    /// Cycles from issue until the destination register of a `class`
    /// instruction with `conflict_ways`-way bank serialization is ready, at
    /// the full thread-group width: `max(latency, T_issue)` with
    /// `T_issue = issue_cycles × conflict_ways`, and the shared-load latency
    /// inflated by `(ways − 1) × issue_cycles` replays — exactly the
    /// per-instruction completion delta the detailed engine charges, exposed
    /// here so static analyses (the `snp-verify` critical-path bound) can
    /// weight dependence edges without re-deriving engine semantics.
    pub fn completion_cycles(&self, class: InstrClass, conflict_ways: u32) -> u64 {
        let width = self.issue_cycles(class) as u64;
        let ways = conflict_ways.max(1) as u64;
        let t_issue = width * ways;
        let latency = match class {
            InstrClass::LoadShared => self.memory.shared_latency_cycles as u64 + (ways - 1) * width,
            InstrClass::StoreGlobal | InstrClass::StoreShared => t_issue,
            _ => self.result_latency(class) as u64,
        };
        latency.max(t_issue)
    }

    /// Clock period in nanoseconds.
    pub fn cycle_ns(&self) -> f64 {
        1.0 / self.frequency_ghz
    }

    /// Converts a cycle count on this device to nanoseconds.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles * self.cycle_ns()
    }

    /// Shared memory usable by kernels after runtime reservation.
    pub fn usable_shared_bytes(&self) -> u32 {
        self.shared_mem_bytes - self.shared_mem_reserved_bytes
    }

    /// Registers available to one thread when `groups_per_core` thread
    /// groups are resident, clamped by the architectural per-thread limit.
    /// This is a *count* — compare it against `Program::reg_count()`
    /// (`max_reg + 1`), never against the highest register index.
    pub fn regs_per_thread_at_occupancy(&self, groups_per_core: u32) -> u32 {
        let threads = groups_per_core.max(1) * self.n_t;
        (self.registers_per_core / threads).min(self.max_regs_per_thread)
    }

    /// Thread groups resident per core at the paper's chosen occupancy
    /// (`N_cl × L_fn`, §V-E — "we limit the number of thread groups necessary
    /// to reside on a core to the product of the number of compute clusters
    /// and the latency of an arithmetic operation").
    pub fn chosen_occupancy_groups(&self) -> u32 {
        (self.n_clusters * self.l_fn).min(self.max_thread_groups)
    }

    /// The vendor's name for a thread group.
    pub fn thread_group_term(&self) -> &'static str {
        match self.vendor {
            Vendor::Nvidia => "warp",
            Vendor::Amd => "wavefront",
            Vendor::Cpu => "SIMD instruction",
        }
    }

    /// Validates internal consistency; called by the device database tests.
    pub fn validate(&self) -> Result<(), String> {
        if self.frequency_ghz <= 0.0 {
            return Err(format!("{}: non-positive frequency", self.name));
        }
        if !self.n_t.is_power_of_two() {
            return Err(format!(
                "{}: N_T {} must be a power of two",
                self.name, self.n_t
            ));
        }
        for class in [InstrClass::IntAdd, InstrClass::Logic, InstrClass::Popc] {
            if self.pipeline_for(class).is_none() {
                return Err(format!("{}: no pipeline for {class}", self.name));
            }
        }
        if self.shared_mem_reserved_bytes >= self.shared_mem_bytes && self.shared_mem_bytes > 0 {
            return Err(format!("{}: reservation exceeds shared memory", self.name));
        }
        if self.max_alloc_bytes > self.global_mem_bytes {
            return Err(format!(
                "{}: max allocation exceeds global memory",
                self.name
            ));
        }
        if self.word_bits != 32 && self.word_bits != 64 {
            return Err(format!(
                "{}: unsupported word width {}",
                self.name, self.word_bits
            ));
        }
        match (&self.matrix_unit, self.pipeline_for(InstrClass::Mma)) {
            (Some(mu), pipe) => {
                if pipe.is_none() {
                    return Err(format!(
                        "{}: matrix unit declared but no pipeline serves mma",
                        self.name
                    ));
                }
                if mu.frag_m == 0 || mu.frag_n == 0 || mu.frag_k_bits == 0 {
                    return Err(format!("{}: degenerate matrix-unit fragment", self.name));
                }
                if !mu.frag_k_bits.is_multiple_of(self.word_bits) {
                    return Err(format!(
                        "{}: frag_k_bits {} not a multiple of the {}-bit word",
                        self.name, mu.frag_k_bits, self.word_bits
                    ));
                }
            }
            (None, Some(_)) => {
                return Err(format!(
                    "{}: mma pipeline present but no matrix unit declared",
                    self.name
                ));
            }
            (None, None) => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices;

    #[test]
    fn issue_cycles_divides_thread_group_over_lanes() {
        let dev = devices::gtx_980();
        // Maxwell: 32 threads over 8 popc lanes -> 4 cycles.
        assert_eq!(dev.issue_cycles(InstrClass::Popc), 4);
        // 32 threads over 32 logic lanes -> 1 cycle.
        assert_eq!(dev.issue_cycles(InstrClass::Logic), 1);
    }

    #[test]
    fn result_latency_is_max_of_issue_and_lfn() {
        let dev = devices::gtx_980(); // L_fn = 6
        assert_eq!(dev.result_latency(InstrClass::Popc), 6); // max(4, 6)
        assert_eq!(dev.result_latency(InstrClass::Logic), 6); // max(1, 6)
        let vega = devices::vega_64(); // L_fn = 4, popc lanes 16, N_T 64 -> issue 4
        assert_eq!(vega.result_latency(InstrClass::Popc), 4);
    }

    #[test]
    fn mma_result_latency_uses_matrix_unit_lfn() {
        let dev = devices::tc100(); // mma: 8 lanes over N_T 32 -> issue 4; L = 8
        assert_eq!(dev.issue_cycles(InstrClass::Mma), 4);
        assert_eq!(dev.result_latency(InstrClass::Mma), 8);
        let mu = dev.matrix_unit.unwrap();
        // 8 x 8 x (128 / 32) = 256 packed word-ops per issued instruction.
        assert_eq!(mu.frag_k_words(dev.word_bits), 4);
        assert_eq!(mu.word_ops_per_instr(dev.word_bits), 256);
    }

    #[test]
    fn matrix_unit_consistency_validated() {
        let mut dev = devices::tc100();
        dev.matrix_unit = None; // pipeline still serves mma
        assert!(dev.validate().unwrap_err().contains("no matrix unit"));
        let mut dev = devices::tc100();
        dev.pipelines
            .retain(|p| !p.classes.contains(&InstrClass::Mma));
        assert!(dev.validate().unwrap_err().contains("no pipeline"));
        let mut dev = devices::tc100();
        dev.matrix_unit = Some(MatrixUnitSpec {
            frag_k_bits: 48, // not a multiple of 32
            ..dev.matrix_unit.unwrap()
        });
        assert!(dev.validate().unwrap_err().contains("frag_k_bits"));
    }

    #[test]
    fn core_scaling_flat_below_knee() {
        let m = MemoryModel {
            dram_bandwidth_gib_s: 100.0,
            dram_efficiency: 0.8,
            global_latency_cycles: 400,
            shared_latency_cycles: 24,
            scaling_knee: 8,
            scaling_exponent: 0.3,
        };
        assert_eq!(m.core_scaling_efficiency(1), 1.0);
        assert_eq!(m.core_scaling_efficiency(8), 1.0);
        let e16 = m.core_scaling_efficiency(16);
        let e64 = m.core_scaling_efficiency(64);
        assert!(
            e16 < 1.0 && e64 < e16,
            "efficiency must decay past the knee"
        );
    }

    #[test]
    fn transfer_model_costs() {
        let t = TransferModel {
            pcie_bandwidth_gib_s: 12.0,
            transfer_latency_ns: 10_000,
            kernel_launch_ns: 8_000,
            runtime_init_ns: 200_000_000,
            host_pack_gib_s: 8.0,
        };
        let one_gib = t.transfer_ns(1 << 30);
        // ~1/12 s plus latency.
        assert!(
            one_gib > 80_000_000 && one_gib < 95_000_000,
            "got {one_gib}"
        );
        assert_eq!(t.transfer_ns(0), 10_000);
        assert!(
            t.pack_ns(1 << 30) > one_gib,
            "packing is slower than PCIe here"
        );
    }

    #[test]
    fn chosen_occupancy_is_clusters_times_latency() {
        let dev = devices::gtx_980();
        assert_eq!(dev.chosen_occupancy_groups(), (4 * 6));
        let vega = devices::vega_64();
        assert_eq!(vega.chosen_occupancy_groups(), 16); // 4*4 = 16 = cap
    }

    #[test]
    fn regs_per_thread_follow_occupancy_and_architectural_cap() {
        let dev = devices::gtx_980();
        // 64 Ki registers over 24 groups x 32 threads = 85, under the cap.
        assert_eq!(
            dev.regs_per_thread_at_occupancy(dev.chosen_occupancy_groups()),
            85
        );
        // One resident group: the architectural cap (255) binds, not 2048.
        assert_eq!(dev.regs_per_thread_at_occupancy(1), dev.max_regs_per_thread);
    }

    #[test]
    fn usable_shared_reflects_reservation() {
        let dev = devices::gtx_980();
        assert!(dev.usable_shared_bytes() < dev.shared_mem_bytes);
        let vega = devices::vega_64();
        assert_eq!(vega.usable_shared_bytes(), vega.shared_mem_bytes); // §V-E: no Vega reservation
    }
}
