//! Instruction classes of the model GPU.
//!
//! The paper's model architecture (§IV-A) distinguishes functional units by
//! the instruction they execute (`N_fn` carries a superscript per
//! instruction: `N_fn^+`, `N_fn^&`, `N_fn^popcount`). We mirror that with a
//! small set of instruction *classes*; each device maps every class onto one
//! of its pipelines (see [`crate::PipelineSpec`]).

/// The classes of instructions the SNP kernels execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// 32-bit integer addition (the `+` accumulating γ).
    IntAdd,
    /// Bitwise logic: AND, OR, XOR. On devices with a fused AND-NOT
    /// (NVIDIA's LOP3), the fused form is also a single `Logic` issue.
    Logic,
    /// Bitwise NOT as a standalone instruction — only needed on devices
    /// without a fused AND-NOT when the database is not pre-negated.
    Not,
    /// Population count.
    Popc,
    /// Load from global (device) memory.
    LoadGlobal,
    /// Load from shared memory (subject to bank conflicts).
    LoadShared,
    /// Store to global memory.
    StoreGlobal,
    /// Store to shared memory.
    StoreShared,
    /// Scalar bookkeeping (loop counters, address arithmetic). Charged to
    /// the same pipeline as `IntAdd` on every modeled device.
    Scalar,
    /// One 1-bit matrix-unit fragment operation (tensor-core style b1 MMA):
    /// AND+POPC or XOR+POPC over an `frag_m × frag_n × frag_k_bits` tile
    /// fragment, accumulating into 32-bit counters. Only devices declaring a
    /// [`MatrixUnitSpec`](crate::device::MatrixUnitSpec) (and a pipeline
    /// serving this class) can execute it.
    Mma,
}

impl InstrClass {
    /// All classes, in a stable order.
    pub const ALL: [InstrClass; 10] = [
        InstrClass::IntAdd,
        InstrClass::Logic,
        InstrClass::Not,
        InstrClass::Popc,
        InstrClass::LoadGlobal,
        InstrClass::LoadShared,
        InstrClass::StoreGlobal,
        InstrClass::StoreShared,
        InstrClass::Scalar,
        InstrClass::Mma,
    ];

    /// True for the memory classes handled by the load/store pipeline.
    pub fn is_memory(self) -> bool {
        matches!(
            self,
            InstrClass::LoadGlobal
                | InstrClass::LoadShared
                | InstrClass::StoreGlobal
                | InstrClass::StoreShared
        )
    }

    /// Short mnemonic for diagnostics.
    pub fn mnemonic(self) -> &'static str {
        match self {
            InstrClass::IntAdd => "add",
            InstrClass::Logic => "logic",
            InstrClass::Not => "not",
            InstrClass::Popc => "popc",
            InstrClass::LoadGlobal => "ld.global",
            InstrClass::LoadShared => "ld.shared",
            InstrClass::StoreGlobal => "st.global",
            InstrClass::StoreShared => "st.shared",
            InstrClass::Scalar => "scalar",
            InstrClass::Mma => "mma",
        }
    }
}

impl std::fmt::Display for InstrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The arithmetic instruction mix of one *word-op* (one packed word flowing
/// through `popc(op(a, b))` and its accumulation) for a given comparison
/// flavor.
///
/// `fused_andnot` reflects the executing device: with fusion, AND-NOT costs
/// a single `Logic` issue (paper §II-C: "there exist instructions on certain
/// CPU and GPU architectures that can perform the negation of m as part of
/// computing the logical AND"); without it, a separate `Not` is charged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WordOpKind {
    /// `popc(a & b)` — LD and pre-negated mixture analysis.
    And,
    /// `popc(a ^ b)` — FastID identity search.
    Xor,
    /// `popc(a & !b)` — mixture analysis without pre-negation.
    AndNot,
}

impl WordOpKind {
    /// Arithmetic classes issued per word-op (excludes loads/stores, which
    /// depend on blocking factors, not on the operator).
    pub fn arith_mix(self, fused_andnot: bool) -> Vec<(InstrClass, u32)> {
        match self {
            WordOpKind::And | WordOpKind::Xor => vec![
                (InstrClass::Logic, 1),
                (InstrClass::Popc, 1),
                (InstrClass::IntAdd, 1),
            ],
            WordOpKind::AndNot => {
                if fused_andnot {
                    vec![
                        (InstrClass::Logic, 1),
                        (InstrClass::Popc, 1),
                        (InstrClass::IntAdd, 1),
                    ]
                } else {
                    vec![
                        (InstrClass::Not, 1),
                        (InstrClass::Logic, 1),
                        (InstrClass::Popc, 1),
                        (InstrClass::IntAdd, 1),
                    ]
                }
            }
        }
    }

    /// Total arithmetic instructions per word-op.
    pub fn arith_instr_count(self, fused_andnot: bool) -> u32 {
        self.arith_mix(fused_andnot).iter().map(|&(_, n)| n).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_xor_cost_three_instructions() {
        for fused in [false, true] {
            assert_eq!(WordOpKind::And.arith_instr_count(fused), 3);
            assert_eq!(WordOpKind::Xor.arith_instr_count(fused), 3);
        }
    }

    #[test]
    fn andnot_costs_extra_not_without_fusion() {
        assert_eq!(WordOpKind::AndNot.arith_instr_count(true), 3);
        assert_eq!(WordOpKind::AndNot.arith_instr_count(false), 4);
        let unfused = WordOpKind::AndNot.arith_mix(false);
        assert!(unfused.contains(&(InstrClass::Not, 1)));
    }

    #[test]
    fn memory_classification() {
        assert!(InstrClass::LoadGlobal.is_memory());
        assert!(InstrClass::StoreShared.is_memory());
        assert!(!InstrClass::Popc.is_memory());
        assert!(!InstrClass::Scalar.is_memory());
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut names: Vec<_> = InstrClass::ALL.iter().map(|c| c.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), InstrClass::ALL.len());
    }
}
