//! Theoretical peak throughput of SNP comparisons on a modeled device.
//!
//! The paper establishes peaks from the per-cluster functional-unit counts
//! (§V-D): the sustained rate of a kernel is bounded by the most contended
//! pipeline, i.e. `min_p (N_fn(p) / slots(p))` word-ops per cycle per
//! cluster, where `slots(p)` is the number of issue slots one word-op places
//! on pipeline `p`. Scaling by clusters, cores and frequency gives the
//! device peak the dotted lines of Fig. 5 represent.

use crate::device::DeviceSpec;
use crate::instr::{InstrClass, WordOpKind};

/// A word-op is one packed word flowing through `γ += popc(op(a, b))`.
/// This type reports peaks in several convenient units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Word-ops per cycle per compute cluster.
    pub word_ops_per_cycle_per_cluster: f64,
    /// Word-ops per second for one compute core.
    pub word_ops_per_sec_per_core: f64,
    /// Word-ops per second for the whole device.
    pub word_ops_per_sec: f64,
    /// Bit-level comparison throughput (word-ops × word width); the unit in
    /// which CPU (64-bit words) and GPU (32-bit) peaks are comparable.
    pub bit_ops_per_sec: f64,
}

/// Identifies the bottleneck pipeline for an operator on a device.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Name of the limiting pipeline.
    pub pipeline: String,
    /// Issue slots one word-op places on it.
    pub slots_per_word_op: u32,
    /// Its lane count (`N_fn`).
    pub lanes: u32,
}

/// Issue slots per word-op on each pipeline of `dev` for operator `kind`.
///
/// Only arithmetic classes are charged; loads/stores depend on blocking
/// factors and are accounted by the timing engines, not the peak.
pub fn slots_per_pipeline(dev: &DeviceSpec, kind: WordOpKind) -> Vec<(String, u32, u32)> {
    let mut slots = vec![0u32; dev.pipelines.len()];
    for (class, n) in kind.arith_mix(dev.fused_andnot) {
        let idx = dev
            .pipeline_index_for(class)
            .unwrap_or_else(|| panic!("device {} lacks a pipeline for {class}", dev.name));
        slots[idx] += n;
    }
    dev.pipelines
        .iter()
        .zip(slots)
        .map(|(p, s)| (p.name.clone(), p.lanes, s))
        .collect()
}

/// The per-cluster sustained word-op rate and which pipeline limits it.
pub fn bottleneck(dev: &DeviceSpec, kind: WordOpKind) -> Bottleneck {
    slots_per_pipeline(dev, kind)
        .into_iter()
        .filter(|&(_, _, s)| s > 0)
        .min_by(|a, b| {
            let ra = a.1 as f64 / a.2 as f64;
            let rb = b.1 as f64 / b.2 as f64;
            ra.partial_cmp(&rb).unwrap()
        })
        .map(|(pipeline, lanes, slots_per_word_op)| Bottleneck {
            pipeline,
            slots_per_word_op,
            lanes,
        })
        .expect("word-op uses at least one pipeline")
}

/// Theoretical peak for operator `kind` on `dev`.
pub fn peak(dev: &DeviceSpec, kind: WordOpKind) -> Peak {
    let b = bottleneck(dev, kind);
    let per_cluster = b.lanes as f64 / b.slots_per_word_op as f64;
    let per_core = per_cluster * dev.n_clusters as f64 * dev.frequency_ghz * 1e9;
    let device = per_core * dev.n_cores as f64;
    Peak {
        word_ops_per_cycle_per_cluster: per_cluster,
        word_ops_per_sec_per_core: per_core,
        word_ops_per_sec: device,
        bit_ops_per_sec: device * dev.word_bits as f64,
    }
}

/// Peak restricted to `cores` active compute cores (used by the Fig. 7
/// scalability study).
pub fn peak_for_cores(dev: &DeviceSpec, kind: WordOpKind, cores: u32) -> Peak {
    let full = peak(dev, kind);
    let cores = cores.min(dev.n_cores) as f64;
    Peak {
        word_ops_per_cycle_per_cluster: full.word_ops_per_cycle_per_cluster,
        word_ops_per_sec_per_core: full.word_ops_per_sec_per_core,
        word_ops_per_sec: full.word_ops_per_sec_per_core * cores,
        bit_ops_per_sec: full.word_ops_per_sec_per_core * cores * dev.word_bits as f64,
    }
}

/// Theoretical peak of the 1-bit matrix unit for operator `kind` on `dev`,
/// or `None` when the device has no matrix unit.
///
/// One `mma` issue retires `frag_m × frag_n × frag_k_words` word-ops, so the
/// per-cluster rate is `word_ops_per_instr / issue_cycles(Mma)` — the
/// fragment ALUs replace the scalar logic/popc/add chain entirely, so the
/// operator mix does not change the rate (AND-NOT negates the B fragment
/// once per load, off the critical pipe). The `kind` parameter is kept so
/// the signature matches [`peak`] and future devices can differentiate.
pub fn matrix_unit_peak(dev: &DeviceSpec, _kind: WordOpKind) -> Option<Peak> {
    let mu = dev.matrix_unit?;
    let issue = dev.issue_cycles(InstrClass::Mma) as f64;
    let per_cluster = mu.word_ops_per_instr(dev.word_bits) as f64 / issue;
    let per_core = per_cluster * dev.n_clusters as f64 * dev.frequency_ghz * 1e9;
    let device = per_core * dev.n_cores as f64;
    Some(Peak {
        word_ops_per_cycle_per_cluster: per_cluster,
        word_ops_per_sec_per_core: per_core,
        word_ops_per_sec: device,
        bit_ops_per_sec: device * dev.word_bits as f64,
    })
}

/// The best peak the device offers for `kind`: the matrix-unit peak when one
/// exists and beats the scalar pipelines, the scalar [`peak`] otherwise.
///
/// This is the figure the profiler and linter price MMA-lowered plans
/// against; scalar-only devices are unaffected.
pub fn effective_peak(dev: &DeviceSpec, kind: WordOpKind) -> Peak {
    let scalar = peak(dev, kind);
    match matrix_unit_peak(dev, kind) {
        Some(m) if m.word_ops_per_sec > scalar.word_ops_per_sec => m,
        _ => scalar,
    }
}

/// [`effective_peak`] restricted to `cores` active compute cores.
pub fn effective_peak_for_cores(dev: &DeviceSpec, kind: WordOpKind, cores: u32) -> Peak {
    let full = effective_peak(dev, kind);
    let cores = cores.min(dev.n_cores) as f64;
    Peak {
        word_ops_per_cycle_per_cluster: full.word_ops_per_cycle_per_cluster,
        word_ops_per_sec_per_core: full.word_ops_per_sec_per_core,
        word_ops_per_sec: full.word_ops_per_sec_per_core * cores,
        bit_ops_per_sec: full.word_ops_per_sec_per_core * cores * dev.word_bits as f64,
    }
}

/// The popcount-pipe-only peak — the historical "population count is the
/// bottleneck" figure of merit from \[11\]. Coincides with [`peak`] whenever
/// popcount is in fact the limiting pipeline (all NVIDIA devices; on Vega
/// the shared VALU limits instead).
pub fn popcount_peak_word_ops(dev: &DeviceSpec) -> f64 {
    let lanes = dev.n_fn(InstrClass::Popc).expect("device must popcount") as f64;
    lanes * dev.n_clusters as f64 * dev.n_cores as f64 * dev.frequency_ghz * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::*;

    #[test]
    fn nvidia_ld_peak_is_popc_bound() {
        // GTX 980: min(add 32/1, logic 32/1, popc 8/1) = 8 word-ops/cycle/cluster.
        let g = gtx_980();
        let b = bottleneck(&g, WordOpKind::And);
        assert_eq!(b.pipeline, "popc");
        let p = peak(&g, WordOpKind::And);
        assert!((p.word_ops_per_cycle_per_cluster - 8.0).abs() < 1e-12);
        // 8 * 4 clusters * 16 cores * 1.367 GHz ≈ 700 G word-ops/s.
        assert!(
            (p.word_ops_per_sec / 1e9 - 700.0).abs() < 1.0,
            "got {}",
            p.word_ops_per_sec / 1e9
        );
    }

    #[test]
    fn titan_v_ld_peak() {
        let t = titan_v();
        let p = peak(&t, WordOpKind::And);
        assert_eq!(bottleneck(&t, WordOpKind::And).pipeline, "popc");
        // 4 * 4 * 80 * 1.455 GHz ≈ 1862 G word-ops/s.
        assert!(
            (p.word_ops_per_sec / 1e9 - 1862.4).abs() < 1.0,
            "got {}",
            p.word_ops_per_sec / 1e9
        );
    }

    #[test]
    fn vega_ld_peak_is_valu_bound() {
        // Vega: ADD and AND share the 16-lane VALU -> 2 slots -> 8/cycle;
        // popc alone would allow 16/cycle. §V-D: "the addition and logical
        // AND operations fall on the same pipeline which becomes the
        // bottleneck".
        let v = vega_64();
        let b = bottleneck(&v, WordOpKind::And);
        assert_eq!(b.pipeline, "valu");
        assert_eq!(b.slots_per_word_op, 2);
        let p = peak(&v, WordOpKind::And);
        assert!((p.word_ops_per_cycle_per_cluster - 8.0).abs() < 1e-12);
        // 8 * 4 * 64 * 1.663 ≈ 3406 G word-ops/s.
        assert!(
            (p.word_ops_per_sec / 1e9 - 3405.8).abs() < 1.0,
            "got {}",
            p.word_ops_per_sec / 1e9
        );
    }

    #[test]
    fn andnot_peak_drops_only_on_vega() {
        // Fig. 9's mechanism: fused AND-NOT keeps the NVIDIA mixes identical;
        // Vega's explicit NOT adds a third slot to the shared VALU.
        for d in [gtx_980(), titan_v()] {
            let a = peak(&d, WordOpKind::And).word_ops_per_sec;
            let an = peak(&d, WordOpKind::AndNot).word_ops_per_sec;
            assert_eq!(a, an, "{}: fused AND-NOT must not change the peak", d.name);
        }
        let v = vega_64();
        let a = peak(&v, WordOpKind::And).word_ops_per_sec;
        let an = peak(&v, WordOpKind::AndNot).word_ops_per_sec;
        assert!(
            (an / a - 2.0 / 3.0).abs() < 1e-9,
            "NOT adds a slot: 16/3 vs 16/2 lanes/slot"
        );
    }

    #[test]
    fn xor_peak_equals_and_peak() {
        for d in all_gpus() {
            assert_eq!(
                peak(&d, WordOpKind::And).word_ops_per_sec,
                peak(&d, WordOpKind::Xor).word_ops_per_sec,
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn cpu_peak_is_one_popcount_per_cycle_per_core() {
        let c = xeon_e5_2620_v2();
        let p = peak(&c, WordOpKind::And);
        assert_eq!(bottleneck(&c, WordOpKind::And).pipeline, "popc");
        // 1 * 1 * 12 * 2.1 GHz = 25.2 G word64-ops/s.
        assert!((p.word_ops_per_sec / 1e9 - 25.2).abs() < 1e-6);
        assert!((p.bit_ops_per_sec / 1e12 - 1.6128).abs() < 1e-4);
    }

    #[test]
    fn gpu_peaks_dwarf_cpu_in_bit_ops() {
        let cpu = peak(&xeon_e5_2620_v2(), WordOpKind::And).bit_ops_per_sec;
        for d in all_gpus() {
            let g = peak(&d, WordOpKind::And).bit_ops_per_sec;
            assert!(g > 10.0 * cpu, "{} should exceed 10x CPU peak", d.name);
        }
    }

    #[test]
    fn peak_for_cores_scales_linearly() {
        let t = titan_v();
        let p1 = peak_for_cores(&t, WordOpKind::And, 1);
        let p40 = peak_for_cores(&t, WordOpKind::And, 40);
        assert!((p40.word_ops_per_sec / p1.word_ops_per_sec - 40.0).abs() < 1e-9);
        // Clamped at the physical core count.
        let pmax = peak_for_cores(&t, WordOpKind::And, 1000);
        assert_eq!(
            pmax.word_ops_per_sec,
            peak(&t, WordOpKind::And).word_ops_per_sec
        );
    }

    #[test]
    fn tc100_matrix_unit_peak_is_eight_times_its_scalar_peak() {
        // One mma issue retires 8x8x4 = 256 word-ops in ceil(32/8) = 4 issue
        // cycles -> 64 word-ops/cycle/cluster, vs the 8-lane scalar popc
        // bound. 64 * 4 clusters * 108 cores * 1.41 GHz ~= 39.0 T word-ops/s.
        let t = tc100();
        let scalar = peak(&t, WordOpKind::And);
        let mma = matrix_unit_peak(&t, WordOpKind::And).expect("TC100 has a matrix unit");
        assert!((scalar.word_ops_per_cycle_per_cluster - 8.0).abs() < 1e-12);
        assert!((mma.word_ops_per_cycle_per_cluster - 64.0).abs() < 1e-12);
        assert!((mma.word_ops_per_sec / scalar.word_ops_per_sec - 8.0).abs() < 1e-9);
        assert!(
            (mma.word_ops_per_sec / 1e12 - 38.983).abs() < 1e-2,
            "got {}",
            mma.word_ops_per_sec / 1e12
        );
    }

    #[test]
    fn effective_peak_prefers_matrix_unit_only_where_present() {
        for d in all_devices() {
            let s = peak(&d, WordOpKind::And);
            let e = effective_peak(&d, WordOpKind::And);
            if d.matrix_unit.is_some() {
                assert!(
                    e.word_ops_per_sec > s.word_ops_per_sec,
                    "{}: matrix unit should raise the effective peak",
                    d.name
                );
            } else {
                assert_eq!(e, s, "{}: no matrix unit, peaks must coincide", d.name);
            }
        }
    }

    #[test]
    fn effective_peak_for_cores_scales_and_clamps() {
        let t = tc100();
        let p1 = effective_peak_for_cores(&t, WordOpKind::Xor, 1);
        let p27 = effective_peak_for_cores(&t, WordOpKind::Xor, 27);
        assert!((p27.word_ops_per_sec / p1.word_ops_per_sec - 27.0).abs() < 1e-9);
        let pmax = effective_peak_for_cores(&t, WordOpKind::Xor, 10_000);
        assert_eq!(
            pmax.word_ops_per_sec,
            effective_peak(&t, WordOpKind::Xor).word_ops_per_sec
        );
    }

    #[test]
    fn popcount_peak_matches_bottleneck_on_nvidia_only() {
        let g = gtx_980();
        assert_eq!(
            popcount_peak_word_ops(&g),
            peak(&g, WordOpKind::And).word_ops_per_sec
        );
        let v = vega_64();
        assert!(popcount_peak_word_ops(&v) > peak(&v, WordOpKind::And).word_ops_per_sec);
    }
}
