//! Table II of the paper: the software configuration parameters actually
//! used for each device × algorithm pair. These are the hand-confirmed
//! values; the analytical model of [`crate::config`] must bracket them
//! (tested there and here).

use crate::config::{Algorithm, KernelConfig};
use crate::device::DeviceSpec;

/// One Table II row set: the configuration used for `algorithm` on the
/// device named `device`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Preset {
    /// Device marketing name (matches [`crate::devices::by_name`]).
    pub device: &'static str,
    /// The algorithm family the row configures. The paper gives one column
    /// for LD and one for FastID (identity search and mixture analysis share
    /// a configuration).
    pub algorithm: PresetAlgorithm,
    /// The configuration itself.
    pub config: KernelConfig,
}

/// Table II distinguishes only LD vs FastID.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PresetAlgorithm {
    /// Linkage disequilibrium (square problems).
    Ld,
    /// FastID identity search / mixture analysis (query × database).
    FastId,
}

impl PresetAlgorithm {
    /// Maps a full [`Algorithm`] onto its Table II column.
    pub fn of(a: Algorithm) -> Self {
        match a {
            Algorithm::LinkageDisequilibrium => PresetAlgorithm::Ld,
            Algorithm::IdentitySearch | Algorithm::MixtureAnalysis => PresetAlgorithm::FastId,
        }
    }
}

fn cfg(
    m_c: usize,
    m_r: usize,
    k_c: usize,
    n_r: usize,
    grid_m: u32,
    grid_n: u32,
    groups: u32,
) -> KernelConfig {
    KernelConfig {
        m_c,
        m_r,
        k_c,
        n_r,
        grid_m,
        grid_n,
        groups_per_cluster: groups,
    }
}

/// All Table II rows. Core configurations are `grid_m × grid_n` (third ×
/// second loop); `groups_per_cluster` is the device's `L_fn` (the paper's
/// occupancy choice, §V-E).
pub fn table2() -> Vec<Preset> {
    vec![
        // Linkage disequilibrium.
        Preset {
            device: "GTX 980",
            algorithm: PresetAlgorithm::Ld,
            config: cfg(32, 4, 383, 384, 4, 4, 6),
        },
        Preset {
            device: "Titan V",
            algorithm: PresetAlgorithm::Ld,
            config: cfg(32, 4, 383, 1024, 80, 1, 4),
        },
        Preset {
            device: "Vega 64",
            algorithm: PresetAlgorithm::Ld,
            config: cfg(32, 4, 512, 1024, 32, 2, 4),
        },
        // FastID.
        Preset {
            device: "GTX 980",
            algorithm: PresetAlgorithm::FastId,
            config: cfg(32, 4, 383, 768, 1, 16, 6),
        },
        Preset {
            device: "Titan V",
            algorithm: PresetAlgorithm::FastId,
            config: cfg(32, 4, 383, 1024, 1, 80, 4),
        },
        Preset {
            device: "Vega 64",
            algorithm: PresetAlgorithm::FastId,
            config: cfg(32, 4, 512, 1024, 1, 64, 4),
        },
        // TC100 — not in the paper; the column is derived from the same
        // Eq. 4–7 model the three printed columns are cross-checked against
        // (k_c from Eq. 6, n_r as the largest valid power of two per thread,
        // grids occupying all 108 cores).
        Preset {
            device: "TC100",
            algorithm: PresetAlgorithm::Ld,
            config: cfg(32, 4, 383, 2048, 108, 1, 4),
        },
        Preset {
            device: "TC100",
            algorithm: PresetAlgorithm::FastId,
            config: cfg(32, 4, 383, 2048, 1, 108, 4),
        },
    ]
}

/// The Table II configuration for a device and algorithm, if one exists.
pub fn preset_for(dev: &DeviceSpec, algorithm: Algorithm) -> Option<KernelConfig> {
    let col = PresetAlgorithm::of(algorithm);
    table2()
        .into_iter()
        .find(|p| p.device.eq_ignore_ascii_case(&dev.name) && p.algorithm == col)
        .map(|p| p.config)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{n_r_lower_bound, n_r_upper_bound};
    use crate::devices;

    #[test]
    fn every_preset_names_a_known_device() {
        for p in table2() {
            assert!(devices::by_name(p.device).is_some(), "{}", p.device);
        }
    }

    #[test]
    fn presets_are_valid_configurations() {
        for p in table2() {
            let dev = devices::by_name(p.device).unwrap();
            let viol = p.config.violations(&dev);
            assert!(
                viol.is_empty(),
                "{} ({:?}): {viol:?}",
                p.device,
                p.algorithm
            );
        }
    }

    #[test]
    fn presets_respect_analytical_bounds() {
        for p in table2() {
            let dev = devices::by_name(p.device).unwrap();
            let lo = n_r_lower_bound(&dev, p.config.m_r, p.config.m_c);
            let hi = n_r_upper_bound(&dev, p.config.m_r);
            assert!(
                lo <= p.config.n_r && p.config.n_r <= hi,
                "{} ({:?}): n_r {} outside [{lo}, {hi}]",
                p.device,
                p.algorithm,
                p.config.n_r
            );
        }
    }

    #[test]
    fn table2_tile_is_identical_across_devices() {
        // "Notice that the tile computed by each core remains the same while
        // the configuration of the cores are determined by the problem" —
        // m_c and m_r are constant across Table II.
        for p in table2() {
            assert_eq!(p.config.m_c, 32);
            assert_eq!(p.config.m_r, 4);
        }
    }

    #[test]
    fn fastid_grids_have_one_m_core() {
        for p in table2()
            .into_iter()
            .filter(|p| p.algorithm == PresetAlgorithm::FastId)
        {
            assert_eq!(p.config.grid_m, 1);
            let dev = devices::by_name(p.device).unwrap();
            assert_eq!(p.config.grid_n, dev.n_cores);
        }
    }

    #[test]
    fn grids_use_every_core() {
        for p in table2() {
            let dev = devices::by_name(p.device).unwrap();
            assert_eq!(
                p.config.cores(),
                dev.n_cores,
                "{} {:?}",
                p.device,
                p.algorithm
            );
        }
    }

    #[test]
    fn preset_lookup() {
        use crate::config::Algorithm::*;
        let dev = devices::titan_v();
        let ld = preset_for(&dev, LinkageDisequilibrium).unwrap();
        assert_eq!((ld.grid_m, ld.grid_n, ld.n_r), (80, 1, 1024));
        let id = preset_for(&dev, IdentitySearch).unwrap();
        let mix = preset_for(&dev, MixtureAnalysis).unwrap();
        assert_eq!(id, mix, "FastID rows are shared");
        assert_eq!((id.grid_m, id.grid_n), (1, 80));
    }

    #[test]
    fn k_c_column_matches_eq6_derivation() {
        for p in table2() {
            let dev = devices::by_name(p.device).unwrap();
            assert_eq!(
                p.config.k_c,
                crate::config::derive_k_c(&dev),
                "{}",
                p.device
            );
        }
    }
}
