//! The analytical software-configuration model (paper §V-A, Eqs. 4–7).
//!
//! The framework needs only four values to specialize its parameterized
//! kernel for a device — `m_c`, `m_r`, `k_c`, `n_r` (the BLIS blocking
//! parameters) — plus a distribution of the compute cores between the second
//! and third loops around the microkernel. This module derives them from
//! [`DeviceSpec`] hardware features exactly as §V-A prescribes, and exposes
//! the bounds the paper states as inequalities.

use crate::device::DeviceSpec;
use crate::instr::WordOpKind;

/// Which SNP-comparison algorithm a kernel instantiates (paper §II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Linkage disequilibrium: square AND self-comparison (Eq. 1).
    LinkageDisequilibrium,
    /// FastID identity search: small query × huge database, XOR (Eq. 2).
    IdentitySearch,
    /// FastID mixture analysis: AND-NOT, or AND after pre-negation (Eq. 3).
    MixtureAnalysis,
}

impl Algorithm {
    /// The word-op flavor the kernel executes. `pre_negated` selects the
    /// §II-C database transformation for mixture analysis.
    pub fn word_op(self, pre_negated: bool) -> WordOpKind {
        match self {
            Algorithm::LinkageDisequilibrium => WordOpKind::And,
            Algorithm::IdentitySearch => WordOpKind::Xor,
            Algorithm::MixtureAnalysis => {
                if pre_negated {
                    WordOpKind::And
                } else {
                    WordOpKind::AndNot
                }
            }
        }
    }

    /// Display name used by the bench binaries.
    pub fn name(self) -> &'static str {
        match self {
            Algorithm::LinkageDisequilibrium => "Linkage disequilibrium",
            Algorithm::IdentitySearch => "FastID identity search",
            Algorithm::MixtureAnalysis => "FastID mixture analysis",
        }
    }
}

/// The logical problem: `γ (m × n) = A (m × k) ⋄ Bᵀ (k × n)` with `k`
/// counted in packed *words*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProblemShape {
    /// Rows of A (queries / SNP strings).
    pub m: usize,
    /// Rows of B (database profiles / SNP strings).
    pub n: usize,
    /// Shared dimension in packed words.
    pub k_words: usize,
}

impl ProblemShape {
    /// Total word-ops of the full computation.
    pub fn word_ops(&self) -> u128 {
        self.m as u128 * self.n as u128 * self.k_words as u128
    }
}

/// How `m_c` is derived. Table II uses `m_c = N_b` on every device; Eq. 5 as
/// printed reads `m_c = N_b / N_cl`. See DESIGN.md §6 for the discrepancy
/// discussion — `Banks` is the default because it is the value the paper's
/// own configurations use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McRule {
    /// `m_c = N_b` (Table II's actual values; the FastID query size of 32
    /// "was determined by the number of shared memory banks", §VI-D).
    Banks,
    /// `m_c = N_b / N_cl` (Eq. 5 as printed).
    BanksPerCluster,
}

/// The "configuration header" of the framework (§V): the four BLIS blocking
/// values plus the core grid and the chosen occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Rows of the A block packed into shared memory.
    pub m_c: usize,
    /// Register-block rows per thread group (Eq. 4: `m_r = N_vec`).
    pub m_r: usize,
    /// Shared-dimension words of the A block in shared memory (Eq. 6).
    pub k_c: usize,
    /// Register-block columns per core tile (Eq. 7 lower bound ≤ `n_r` ≤
    /// register-file bound).
    pub n_r: usize,
    /// Cores assigned to the third loop (the `m` direction).
    pub grid_m: u32,
    /// Cores assigned to the second loop (the `n` direction).
    pub grid_n: u32,
    /// Thread groups resident per compute cluster (the paper uses `L_fn`).
    pub groups_per_cluster: u32,
}

impl KernelConfig {
    /// Total cores the grid uses.
    pub fn cores(&self) -> u32 {
        self.grid_m * self.grid_n
    }

    /// Columns computed by one thread group: `n_r / L_groups` where
    /// `L_groups = groups_per_cluster` (the paper's `n_r / L_fn` split,
    /// §IV-C).
    pub fn cols_per_group(&self) -> usize {
        self.n_r / self.groups_per_cluster as usize
    }

    /// Output values each *thread* accumulates in registers
    /// (`m_r × n_r / (L_fn × N_T)` — the `v` in DESIGN.md).
    pub fn values_per_thread(&self, n_t: u32) -> usize {
        self.m_r * self.cols_per_group() / n_t as usize
    }

    /// Shared-memory bytes the A block occupies (4-byte elements, Eq. 6).
    pub fn shared_bytes_used(&self) -> usize {
        self.m_c * self.k_c * 4
    }

    /// Validates the configuration against a device and returns a list of
    /// violated constraints (empty = valid).
    pub fn violations(&self, dev: &DeviceSpec) -> Vec<String> {
        let mut v = Vec::new();
        if self.m_r == 0 || self.n_r == 0 || self.m_c == 0 || self.k_c == 0 {
            v.push("all blocking parameters must be positive".into());
            return v;
        }
        if !self.m_r.is_multiple_of(dev.n_vec as usize) {
            v.push(format!(
                "m_r {} must be a multiple of N_vec {}",
                self.m_r, dev.n_vec
            ));
        }
        if self.shared_bytes_used() > dev.usable_shared_bytes() as usize {
            v.push(format!(
                "A block of {} B exceeds usable shared memory {} B",
                self.shared_bytes_used(),
                dev.usable_shared_bytes()
            ));
        }
        if !self.m_c.is_multiple_of(self.m_r) {
            v.push(format!(
                "m_c {} must be a multiple of m_r {}",
                self.m_c, self.m_r
            ));
        }
        if !self.n_r.is_multiple_of(self.groups_per_cluster as usize) {
            v.push(format!(
                "n_r {} must divide evenly across {} thread groups",
                self.n_r, self.groups_per_cluster
            ));
        }
        let cols_per_group = self.n_r / self.groups_per_cluster.max(1) as usize;
        if !cols_per_group.is_multiple_of(dev.n_t as usize) {
            v.push(format!(
                "group columns {cols_per_group} must be a multiple of N_T {} (each thread owns whole output columns)",
                dev.n_t
            ));
        }
        if self.cores() > dev.n_cores {
            v.push(format!(
                "grid {}x{} exceeds {} cores",
                self.grid_m, self.grid_n, dev.n_cores
            ));
        }
        let groups_per_core = self.groups_per_cluster * dev.n_clusters;
        if groups_per_core > dev.max_thread_groups * dev.n_clusters {
            v.push(format!(
                "{groups_per_core} groups/core exceeds the device limit"
            ));
        }
        v
    }
}

/// Eq. 4: `m_r = N_vec`.
pub fn derive_m_r(dev: &DeviceSpec) -> usize {
    dev.n_vec as usize
}

/// Eq. 5 / Table II: `m_c` per the chosen rule.
pub fn derive_m_c(dev: &DeviceSpec, rule: McRule) -> usize {
    match rule {
        McRule::Banks => dev.shared_banks as usize,
        McRule::BanksPerCluster => (dev.shared_banks / dev.n_clusters).max(1) as usize,
    }
}

/// Eq. 6: `k_c = N_shared / (4 N_b)`, with the runtime's shared-memory
/// reservation subtracted first (§V-E: NVIDIA's reservation turns 384 into
/// 383; Vega keeps the full 512).
pub fn derive_k_c(dev: &DeviceSpec) -> usize {
    dev.usable_shared_bytes() as usize / (4 * dev.shared_banks as usize)
}

/// Eq. 7 lower bound: `n_r ≥ (N_T m_r / m_c) · N_vec · L_fn`.
pub fn n_r_lower_bound(dev: &DeviceSpec, m_r: usize, m_c: usize) -> usize {
    let subgroup = (dev.n_t as usize * m_r).div_ceil(m_c);
    subgroup * dev.n_vec as usize * dev.l_fn as usize
}

/// Register-file upper bound on `n_r` (§V-A: "we set the upper bound of n_r
/// as the number of registers divided by the total number of threads used in
/// each core", less a fixed overhead for addressing and operand registers).
pub fn n_r_upper_bound(dev: &DeviceSpec, m_r: usize) -> usize {
    const OVERHEAD_REGS: usize = 16;
    let regs_per_thread = dev.regs_per_thread_at_occupancy(dev.chosen_occupancy_groups()) as usize;
    let accum = regs_per_thread.saturating_sub(OVERHEAD_REGS).max(1);
    let v_max = (accum / m_r).max(1);
    dev.l_fn as usize * dev.n_t as usize * v_max
}

/// Derives a full [`KernelConfig`] from hardware features alone (no Table II
/// preset), picking `n_r` as the largest power-of-two-per-thread value within
/// the Eq. 7 / register bounds, and a core grid suited to the problem shape.
pub fn derive_config(dev: &DeviceSpec, shape: ProblemShape, rule: McRule) -> KernelConfig {
    let m_r = derive_m_r(dev);
    let m_c = derive_m_c(dev, rule);
    let k_c = derive_k_c(dev);
    let lo = n_r_lower_bound(dev, m_r, m_c);
    let hi = n_r_upper_bound(dev, m_r);
    let l = dev.l_fn as usize;
    let nt = dev.n_t as usize;
    // n_r = L_fn * N_T * v, with v the per-thread column count; prefer the
    // largest power-of-two v that keeps n_r within bounds, clamped to the
    // lower bound if the register file is tight.
    let mut v = 1usize;
    while l * nt * (v * 2) <= hi && v < 64 {
        v *= 2;
    }
    let mut n_r = l * nt * v;
    if n_r < lo {
        n_r = lo.next_multiple_of(l * nt);
    }
    let (grid_m, grid_n) = derive_grid(dev, shape, m_c, n_r);
    KernelConfig {
        m_c,
        m_r,
        k_c,
        n_r,
        grid_m,
        grid_n,
        groups_per_cluster: dev.l_fn,
    }
}

/// Distributes the cores between the third (m) and second (n) loop
/// (paper §IV-C: "the distribution of GPU cores between the second and third
/// loop is left as a parameter since different problems may require
/// different distribution"). The heuristic assigns cores proportionally to
/// the available tile-level parallelism in each dimension.
pub fn derive_grid(dev: &DeviceSpec, shape: ProblemShape, m_c: usize, n_r: usize) -> (u32, u32) {
    let cores = dev.n_cores;
    let m_tiles = shape.m.div_ceil(m_c).max(1) as u32;
    let n_tiles = shape.n.div_ceil(n_r).max(1) as u32;
    // Start from the factorization of `cores` whose ratio best matches the
    // tile-count ratio, clamped by the actual parallelism available.
    let mut best = (1u32, cores);
    let mut best_score = f64::INFINITY;
    for gm in 1..=cores {
        if !cores.is_multiple_of(gm) {
            continue;
        }
        let gn = cores / gm;
        if gm > m_tiles || gn > n_tiles {
            continue;
        }
        let score = (gm as f64 / gn as f64).ln() - (m_tiles as f64 / n_tiles as f64).ln();
        let score = score.abs();
        if score < best_score {
            best_score = score;
            best = (gm, gn);
        }
    }
    if best_score.is_infinite() {
        // Degenerate problems smaller than the core count in both directions:
        // use whatever fits.
        best = (
            m_tiles.min(cores),
            (cores / m_tiles.min(cores)).min(n_tiles).max(1),
        );
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::devices::*;

    fn ld_shape() -> ProblemShape {
        ProblemShape {
            m: 12_256,
            n: 12_256,
            k_words: 384,
        }
    }

    fn fastid_shape() -> ProblemShape {
        ProblemShape {
            m: 32,
            n: 20_971_520,
            k_words: 32,
        }
    }

    #[test]
    fn eq4_m_r_is_n_vec() {
        for d in all_gpus() {
            assert_eq!(
                derive_m_r(&d),
                4,
                "{}: Table II has m_r = 4 everywhere",
                d.name
            );
        }
    }

    #[test]
    fn m_c_rules() {
        let g = gtx_980();
        assert_eq!(derive_m_c(&g, McRule::Banks), 32); // Table II value
        assert_eq!(derive_m_c(&g, McRule::BanksPerCluster), 8); // Eq. 5 as printed
    }

    #[test]
    fn eq6_k_c_matches_table2() {
        // NVIDIA: (48 KiB - reservation) / (4 * 32) = 383; Vega: 64 KiB / 128 = 512.
        assert_eq!(derive_k_c(&gtx_980()), 383);
        assert_eq!(derive_k_c(&titan_v()), 383);
        assert_eq!(derive_k_c(&vega_64()), 512);
    }

    #[test]
    fn eq7_lower_bounds() {
        // GTX 980: (32*4/32) * 4 * 6 = 96; Titan V: 4*4*4 = 64; Vega: (64*4/32)*4*4 = 128.
        assert_eq!(n_r_lower_bound(&gtx_980(), 4, 32), 96);
        assert_eq!(n_r_lower_bound(&titan_v(), 4, 32), 64);
        assert_eq!(n_r_lower_bound(&vega_64(), 4, 32), 128);
    }

    #[test]
    fn table2_n_r_within_model_bounds() {
        // The tuned Table II values must bracket between Eq. 7's lower bound
        // and the register-file upper bound.
        for (dev, n_r) in [(gtx_980(), 384), (titan_v(), 1024), (vega_64(), 1024)] {
            let lo = n_r_lower_bound(&dev, 4, 32);
            let hi = n_r_upper_bound(&dev, 4);
            assert!(
                lo <= n_r && n_r <= hi,
                "{}: {lo} <= {n_r} <= {hi} violated",
                dev.name
            );
        }
    }

    #[test]
    fn derived_configs_are_valid() {
        for d in all_gpus() {
            for shape in [ld_shape(), fastid_shape()] {
                let c = derive_config(&d, shape, McRule::Banks);
                let viol = c.violations(&d);
                assert!(viol.is_empty(), "{}: {viol:?} (config {c:?})", d.name);
                assert!(c.n_r >= n_r_lower_bound(&d, c.m_r, c.m_c));
            }
        }
    }

    #[test]
    fn fastid_grid_puts_all_cores_on_the_database_dimension() {
        // Table II FastID rows: 1x16 / 1x80 / 1x64.
        for d in all_gpus() {
            let c = derive_config(&d, fastid_shape(), McRule::Banks);
            assert_eq!(c.grid_m, 1, "{}: queries fit one m tile", d.name);
            assert_eq!(c.grid_n, d.n_cores, "{}", d.name);
        }
    }

    #[test]
    fn ld_grid_uses_all_cores() {
        for d in all_gpus() {
            let c = derive_config(&d, ld_shape(), McRule::Banks);
            assert_eq!(c.cores(), d.n_cores, "{}", d.name);
            assert!(
                c.grid_m > 1,
                "{}: square problems should split m too",
                d.name
            );
        }
    }

    #[test]
    fn config_accessors_consistent() {
        let d = titan_v();
        let c = derive_config(&d, ld_shape(), McRule::Banks);
        assert_eq!(c.groups_per_cluster, d.l_fn);
        assert_eq!(c.cols_per_group() * c.groups_per_cluster as usize, c.n_r);
        assert!(c.values_per_thread(d.n_t) >= 1);
        assert!(c.shared_bytes_used() <= d.usable_shared_bytes() as usize);
    }

    #[test]
    fn violations_catch_bad_configs() {
        let d = gtx_980();
        let mut c = derive_config(&d, ld_shape(), McRule::Banks);
        c.k_c = 100_000; // overflow shared memory
        assert!(!c.violations(&d).is_empty());
        let mut c2 = derive_config(&d, ld_shape(), McRule::Banks);
        c2.m_r = 3; // not a multiple of N_vec
        assert!(!c2.violations(&d).is_empty());
    }

    #[test]
    fn word_op_selection_per_algorithm() {
        assert_eq!(
            Algorithm::LinkageDisequilibrium.word_op(false),
            WordOpKind::And
        );
        assert_eq!(Algorithm::IdentitySearch.word_op(false), WordOpKind::Xor);
        assert_eq!(
            Algorithm::MixtureAnalysis.word_op(false),
            WordOpKind::AndNot
        );
        assert_eq!(Algorithm::MixtureAnalysis.word_op(true), WordOpKind::And);
    }

    #[test]
    fn problem_word_ops() {
        let s = ProblemShape {
            m: 10,
            n: 20,
            k_words: 3,
        };
        assert_eq!(s.word_ops(), 600);
    }
}
