//! The device database: Table I of the paper, expressed as [`DeviceSpec`]s.
//!
//! Arithmetic-unit counts, latencies, frequencies, memory sizes, bank
//! counts and register files are taken directly from Table I. Pipeline
//! *sharing* follows the paper's microbenchmark observations (§V-D,
//! §VI-E-1): population count sits on its own pipeline everywhere; on Vega
//! the ADD / AND / NOT instructions share one VALU pipeline, while the
//! NVIDIA parts issue ADD and logic to separate unit groups and fuse
//! AND-NOT (LOP3). Memory-bandwidth figures are the public specifications;
//! the scaling knee/exponent pairs are calibrated to Fig. 7 as described in
//! DESIGN.md §6.

use crate::device::{DeviceSpec, MatrixUnitSpec, MemoryModel, PipelineSpec, TransferModel, Vendor};
use crate::instr::InstrClass;

const GIB: u64 = 1 << 30;
const KIB: u32 = 1 << 10;

/// NVIDIA GTX 980 (Maxwell). Table I column 2.
pub fn gtx_980() -> DeviceSpec {
    DeviceSpec {
        name: "GTX 980".to_string(),
        vendor: Vendor::Nvidia,
        microarchitecture: "Maxwell".to_string(),
        frequency_ghz: 1.367,
        n_t: 32,
        max_thread_groups: 32,
        n_cores: 16,
        n_clusters: 4,
        pipelines: vec![
            PipelineSpec::new("add", 32, &[InstrClass::IntAdd, InstrClass::Scalar]),
            PipelineSpec::new("logic", 32, &[InstrClass::Logic, InstrClass::Not]),
            PipelineSpec::new("popc", 8, &[InstrClass::Popc]),
            PipelineSpec::new(
                "lsu",
                8,
                &[
                    InstrClass::LoadGlobal,
                    InstrClass::LoadShared,
                    InstrClass::StoreGlobal,
                    InstrClass::StoreShared,
                ],
            ),
        ],
        l_fn: 6,
        global_mem_bytes: (3.934 * GIB as f64) as u64,
        max_alloc_bytes: (0.983 * GIB as f64) as u64,
        shared_mem_bytes: 48 * KIB,
        shared_mem_reserved_bytes: 32, // NVIDIA OpenCL reservation (§V-E): k_c = 383, not 384
        shared_banks: 32,
        registers_per_core: 64 * 1024,
        max_regs_per_thread: 255,
        n_vec: 4,
        word_bits: 32,
        fused_andnot: true,
        memory: MemoryModel {
            dram_bandwidth_gib_s: 224.0,
            dram_efficiency: 0.75,
            global_latency_cycles: 28,
            shared_latency_cycles: 24,
            scaling_knee: 1,
            scaling_exponent: 0.0345, // ≈ 90.9 % per-core efficiency at 16 cores (Fig. 7)
        },
        transfer: pcie3(180),
        matrix_unit: None,
    }
}

/// NVIDIA Titan V (Volta). Table I column 3.
pub fn titan_v() -> DeviceSpec {
    DeviceSpec {
        name: "Titan V".to_string(),
        vendor: Vendor::Nvidia,
        microarchitecture: "Volta".to_string(),
        frequency_ghz: 1.455,
        n_t: 32,
        max_thread_groups: 32,
        n_cores: 80,
        n_clusters: 4,
        pipelines: vec![
            PipelineSpec::new("add", 16, &[InstrClass::IntAdd, InstrClass::Scalar]),
            PipelineSpec::new("logic", 16, &[InstrClass::Logic, InstrClass::Not]),
            PipelineSpec::new("popc", 4, &[InstrClass::Popc]),
            PipelineSpec::new(
                "lsu",
                8,
                &[
                    InstrClass::LoadGlobal,
                    InstrClass::LoadShared,
                    InstrClass::StoreGlobal,
                    InstrClass::StoreShared,
                ],
            ),
        ],
        l_fn: 4,
        global_mem_bytes: (11.754 * GIB as f64) as u64,
        max_alloc_bytes: (2.939 * GIB as f64) as u64,
        shared_mem_bytes: 48 * KIB,
        shared_mem_reserved_bytes: 32,
        shared_banks: 32,
        registers_per_core: 64 * 1024,
        max_regs_per_thread: 255,
        n_vec: 4,
        word_bits: 32,
        fused_andnot: true,
        memory: MemoryModel {
            dram_bandwidth_gib_s: 652.0,
            dram_efficiency: 0.80,
            global_latency_cycles: 28,
            shared_latency_cycles: 24,
            scaling_knee: 1,
            scaling_exponent: 0.0065, // ≈ 97 % at 80 cores: "scales almost perfectly" (Fig. 7)
        },
        transfer: pcie3(150),
        matrix_unit: None,
    }
}

/// AMD Vega 64 (GCN5). Table I column 4.
pub fn vega_64() -> DeviceSpec {
    DeviceSpec {
        name: "Vega 64".to_string(),
        vendor: Vendor::Amd,
        microarchitecture: "Vega (GCN5)".to_string(),
        frequency_ghz: 1.663,
        n_t: 64,
        max_thread_groups: 16,
        n_cores: 64,
        n_clusters: 4,
        pipelines: vec![
            // §V-D: "on the Vega 64 the addition and logical AND operations
            // fall on the same pipeline which becomes the bottleneck"; the
            // standalone NOT also lands here (§VI-E-1, Fig. 9).
            PipelineSpec::new(
                "valu",
                16,
                &[
                    InstrClass::IntAdd,
                    InstrClass::Logic,
                    InstrClass::Not,
                    InstrClass::Scalar,
                ],
            ),
            PipelineSpec::new("popc", 16, &[InstrClass::Popc]),
            PipelineSpec::new(
                "lsu",
                16,
                &[
                    InstrClass::LoadGlobal,
                    InstrClass::LoadShared,
                    InstrClass::StoreGlobal,
                    InstrClass::StoreShared,
                ],
            ),
        ],
        l_fn: 4,
        global_mem_bytes: (7.984 * GIB as f64) as u64,
        max_alloc_bytes: (6.786 * GIB as f64) as u64,
        shared_mem_bytes: 64 * KIB,
        shared_mem_reserved_bytes: 0, // §V-E: "no such limitation on the Vega 64"
        shared_banks: 32,
        registers_per_core: 64 * 1024,
        max_regs_per_thread: 256,
        n_vec: 4,
        word_bits: 32,
        fused_andnot: false, // no LOP3 equivalent: NOT costs a VALU issue
        memory: MemoryModel {
            dram_bandwidth_gib_s: 484.0,
            dram_efficiency: 0.70,
            global_latency_cycles: 28,
            shared_latency_cycles: 24,
            scaling_knee: 8,
            // (8/64)^0.2733 ≈ 0.567; together with the ~3 % VALU overhead of
            // the kernel's scalar bookkeeping this reproduces both the Fig. 7
            // collapse past 8 cores and the 54.9 % of peak of Fig. 5.
            scaling_exponent: 0.2733,
        },
        transfer: pcie3(250),
        matrix_unit: None,
    }
}

/// The paper's CPU reference, expressed in model-GPU vocabulary: a
/// dual-socket Xeon E5-2620 v2 workstation (Ivy Bridge, 2 × 6 cores at
/// 2.10 GHz). Table I column 1. One scalar 64-bit POPCNT pipe per core is
/// the throughput bottleneck (paper §III and \[11\]).
pub fn xeon_e5_2620_v2() -> DeviceSpec {
    DeviceSpec {
        name: "Xeon E5-2620 v2".to_string(),
        vendor: Vendor::Cpu,
        microarchitecture: "Ivy Bridge".to_string(),
        frequency_ghz: 2.1,
        n_t: 1,
        max_thread_groups: 2, // 2-way hyperthreading
        n_cores: 12,          // 2 sockets x 6 cores
        n_clusters: 1,
        pipelines: vec![
            PipelineSpec::new("alu-add", 4, &[InstrClass::IntAdd, InstrClass::Scalar]),
            PipelineSpec::new("alu-logic", 4, &[InstrClass::Logic, InstrClass::Not]),
            PipelineSpec::new("popc", 1, &[InstrClass::Popc]),
            PipelineSpec::new(
                "lsu",
                2,
                &[
                    InstrClass::LoadGlobal,
                    InstrClass::LoadShared,
                    InstrClass::StoreGlobal,
                    InstrClass::StoreShared,
                ],
            ),
        ],
        l_fn: 3,
        global_mem_bytes: 64 * GIB,
        max_alloc_bytes: 64 * GIB,
        shared_mem_bytes: 0,
        shared_mem_reserved_bytes: 0,
        shared_banks: 1,
        registers_per_core: 16,
        max_regs_per_thread: 16,
        n_vec: 4,
        word_bits: 64,
        fused_andnot: true, // BMI1 ANDN
        memory: MemoryModel {
            dram_bandwidth_gib_s: 51.2,
            dram_efficiency: 0.8,
            global_latency_cycles: 8,
            shared_latency_cycles: 4,
            scaling_knee: 12,
            scaling_exponent: 0.0,
        },
        transfer: TransferModel {
            pcie_bandwidth_gib_s: 1e9, // host data is already resident
            transfer_latency_ns: 0,
            kernel_launch_ns: 0,
            runtime_init_ns: 0,
            host_pack_gib_s: 8.0,
        },
        matrix_unit: None,
    }
}

/// "TC100": a hypothetical Ampere-like fourth GPU with a 1-bit matrix unit,
/// parameterized Table-I-style. The scalar side follows the A100 lineage
/// (108 cores of 4 clusters at 1.41 GHz, 16-lane add/logic and 8-lane popc
/// pipes, 4-cycle arithmetic latency, 48 KiB OpenCL shared memory with the
/// NVIDIA reservation); the matrix unit executes one b1 8×8×128 AND+POPC /
/// XOR+POPC fragment op per [`InstrClass::Mma`] issue (Epi4Tensor-style),
/// i.e. 256 packed word-ops per instruction from a 4-lane pipeline —
/// 32 word-ops per cycle per cluster, 4× the scalar popc-bound peak.
pub fn tc100() -> DeviceSpec {
    DeviceSpec {
        name: "TC100".to_string(),
        vendor: Vendor::Nvidia,
        microarchitecture: "Ampere".to_string(),
        frequency_ghz: 1.41,
        n_t: 32,
        max_thread_groups: 32,
        n_cores: 108,
        n_clusters: 4,
        pipelines: vec![
            PipelineSpec::new("add", 16, &[InstrClass::IntAdd, InstrClass::Scalar]),
            PipelineSpec::new("logic", 16, &[InstrClass::Logic, InstrClass::Not]),
            PipelineSpec::new("popc", 8, &[InstrClass::Popc]),
            PipelineSpec::new(
                "lsu",
                8,
                &[
                    InstrClass::LoadGlobal,
                    InstrClass::LoadShared,
                    InstrClass::StoreGlobal,
                    InstrClass::StoreShared,
                ],
            ),
            PipelineSpec::new("mma", 8, &[InstrClass::Mma]),
        ],
        l_fn: 4,
        global_mem_bytes: (39.5 * GIB as f64) as u64,
        max_alloc_bytes: (9.875 * GIB as f64) as u64,
        shared_mem_bytes: 48 * KIB,
        shared_mem_reserved_bytes: 32, // same OpenCL reservation as the other NVIDIA parts
        shared_banks: 32,
        registers_per_core: 64 * 1024,
        max_regs_per_thread: 255,
        n_vec: 4,
        word_bits: 32,
        fused_andnot: true,
        memory: MemoryModel {
            dram_bandwidth_gib_s: 1448.0,
            dram_efficiency: 0.85,
            global_latency_cycles: 28,
            shared_latency_cycles: 24,
            scaling_knee: 1,
            scaling_exponent: 0.005, // near-perfect scaling, like the Titan V
        },
        transfer: pcie3(150),
        matrix_unit: Some(MatrixUnitSpec {
            frag_m: 8,
            frag_n: 8,
            frag_k_bits: 128,
            latency_cycles: 8,
        }),
    }
}

fn pcie3(init_ms: u64) -> TransferModel {
    TransferModel {
        pcie_bandwidth_gib_s: 12.0,
        transfer_latency_ns: 10_000,
        kernel_launch_ns: 8_000,
        runtime_init_ns: init_ms * 1_000_000,
        host_pack_gib_s: 8.0,
    }
}

/// The evaluated GPUs: the paper's three in presentation order, plus the
/// matrix-unit TC100 extension.
pub fn all_gpus() -> Vec<DeviceSpec> {
    vec![gtx_980(), titan_v(), vega_64(), tc100()]
}

/// All modeled devices including the CPU column.
pub fn all_devices() -> Vec<DeviceSpec> {
    vec![xeon_e5_2620_v2(), gtx_980(), titan_v(), vega_64(), tc100()]
}

/// Looks a device up by name, ignoring case and separator characters
/// ("Titan V", "titan-v" and "TITAN_V" all resolve).
pub fn by_name(name: &str) -> Option<DeviceSpec> {
    fn norm(s: &str) -> String {
        s.chars()
            .filter(char::is_ascii_alphanumeric)
            .collect::<String>()
            .to_ascii_lowercase()
    }
    let want = norm(name);
    all_devices().into_iter().find(|d| norm(&d.name) == want)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_devices_validate() {
        for d in all_devices() {
            d.validate().unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn table1_arithmetic_units() {
        let g = gtx_980();
        assert_eq!(g.n_fn(InstrClass::IntAdd), Some(32));
        assert_eq!(g.n_fn(InstrClass::Logic), Some(32));
        assert_eq!(g.n_fn(InstrClass::Popc), Some(8));
        let t = titan_v();
        assert_eq!(t.n_fn(InstrClass::IntAdd), Some(16));
        assert_eq!(t.n_fn(InstrClass::Popc), Some(4));
        let v = vega_64();
        assert_eq!(v.n_fn(InstrClass::IntAdd), Some(16));
        assert_eq!(v.n_fn(InstrClass::Popc), Some(16));
        let c = xeon_e5_2620_v2();
        assert_eq!(c.n_fn(InstrClass::IntAdd), Some(4));
        assert_eq!(c.n_fn(InstrClass::Popc), Some(1));
    }

    #[test]
    fn table1_latency_row() {
        assert_eq!(xeon_e5_2620_v2().l_fn, 3);
        assert_eq!(gtx_980().l_fn, 6);
        assert_eq!(titan_v().l_fn, 4);
        assert_eq!(vega_64().l_fn, 4);
    }

    #[test]
    fn table1_topology() {
        let g = gtx_980();
        assert_eq!(
            (g.n_t, g.max_thread_groups, g.n_cores, g.n_clusters),
            (32, 32, 16, 4)
        );
        let t = titan_v();
        assert_eq!((t.n_t, t.n_cores), (32, 80));
        let v = vega_64();
        assert_eq!((v.n_t, v.max_thread_groups, v.n_cores), (64, 16, 64));
        let c = xeon_e5_2620_v2();
        assert_eq!((c.n_t, c.n_cores, c.n_clusters), (1, 12, 1));
    }

    #[test]
    fn table1_memory_rows() {
        let g = gtx_980();
        assert_eq!(g.shared_mem_bytes, 48 * 1024);
        assert_eq!(g.shared_banks, 32);
        assert_eq!(g.registers_per_core, 65536);
        let v = vega_64();
        assert_eq!(v.shared_mem_bytes, 64 * 1024);
        assert!((v.global_mem_bytes as f64 / (1u64 << 30) as f64 - 7.984).abs() < 1e-3);
        assert!((g.max_alloc_bytes as f64 / (1u64 << 30) as f64 - 0.983).abs() < 1e-3);
    }

    #[test]
    fn vega_shares_add_and_not_on_one_pipe() {
        let v = vega_64();
        let add = v.pipeline_index_for(InstrClass::IntAdd).unwrap();
        let logic = v.pipeline_index_for(InstrClass::Logic).unwrap();
        let not = v.pipeline_index_for(InstrClass::Not).unwrap();
        assert_eq!(add, logic);
        assert_eq!(add, not);
        let popc = v.pipeline_index_for(InstrClass::Popc).unwrap();
        assert_ne!(add, popc, "popcount is on its own pipeline (§V-D)");
        assert!(!v.fused_andnot);
    }

    #[test]
    fn nvidia_separates_popc_and_fuses_andnot() {
        for d in [gtx_980(), titan_v()] {
            let add = d.pipeline_index_for(InstrClass::IntAdd).unwrap();
            let logic = d.pipeline_index_for(InstrClass::Logic).unwrap();
            let popc = d.pipeline_index_for(InstrClass::Popc).unwrap();
            assert_ne!(add, logic);
            assert_ne!(popc, add);
            assert_ne!(popc, logic);
            assert!(d.fused_andnot);
        }
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert!(by_name("vega 64").is_some());
        assert!(by_name("TITAN V").is_some());
        assert!(by_name("tc100").is_some());
        assert!(by_name("TC-100").is_some());
        assert!(by_name("gtx 1080").is_none());
    }

    #[test]
    fn tc100_table1_column() {
        let d = tc100();
        assert_eq!(
            (d.n_t, d.max_thread_groups, d.n_cores, d.n_clusters, d.l_fn),
            (32, 32, 108, 4, 4)
        );
        assert_eq!(d.n_fn(InstrClass::Popc), Some(8));
        assert_eq!(d.n_fn(InstrClass::Mma), Some(8));
        let mu = d.matrix_unit.unwrap();
        assert_eq!((mu.frag_m, mu.frag_n, mu.frag_k_bits), (8, 8, 128));
        assert_eq!(mu.latency_cycles, 8);
        assert!(d.fused_andnot);
        assert_eq!(d.usable_shared_bytes(), 48 * 1024 - 32);
    }

    #[test]
    fn only_tc100_has_a_matrix_unit() {
        for d in all_devices() {
            assert_eq!(d.matrix_unit.is_some(), d.name == "TC100", "{}", d.name);
            assert_eq!(
                d.pipeline_for(InstrClass::Mma).is_some(),
                d.name == "TC100",
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn device_matrix_is_three_by_four() {
        assert_eq!(all_gpus().len(), 4);
        assert_eq!(all_devices().len(), 5);
        assert_eq!(all_gpus().last().unwrap().name, "TC100");
    }

    #[test]
    fn vega_scaling_calibration_matches_fig5_endpoint() {
        let v = vega_64();
        let eff = v.memory.core_scaling_efficiency(64);
        // 0.567 x ~0.97 kernel-tile efficiency = the paper's 54.9 % of peak.
        assert!((eff - 0.567).abs() < 0.01, "calibration drifted: got {eff}");
    }

    #[test]
    fn gtx_scaling_calibration_matches_fig7_endpoint() {
        let g = gtx_980();
        let eff = g.memory.core_scaling_efficiency(16);
        assert!((eff - 0.909).abs() < 0.02, "≈90% at 16 cores, got {eff}");
    }
}
