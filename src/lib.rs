//! # snp-repro — umbrella crate
//!
//! Re-exports the workspace's public API for the runnable examples and the
//! cross-crate integration tests.

#![warn(missing_docs)]

pub use snp_bitmat as bitmat;
pub use snp_core as core;
pub use snp_cpu as cpu;
pub use snp_gpu_model as gpu_model;
pub use snp_gpu_sim as gpu_sim;
pub use snp_load as load;
pub use snp_microbench as microbench;
pub use snp_popgen as popgen;
pub use snp_sparse as sparse;
pub use snp_verify as verify;
