//! Quickstart: run all three SNP comparisons on a simulated GPU and verify
//! them against the scalar reference.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use snp_repro::bitmat::{reference_gamma, CompareOp};
use snp_repro::core::{Algorithm, GpuEngine};
use snp_repro::gpu_model::devices;
use snp_repro::popgen::forensic::{
    generate_database, generate_mixtures, generate_queries, DatabaseConfig,
};

fn main() {
    // 1. Generate a small forensic panel: 2 000 reference profiles over 512
    //    SNP sites, with an ascertained allele-frequency spectrum.
    let db = generate_database(
        &DatabaseConfig {
            profiles: 2_000,
            snps: 512,
            ..Default::default()
        },
        42,
    );
    println!(
        "database: {} profiles x {} SNPs, minor-allele density {:.3}",
        db.profiles.rows(),
        db.profiles.cols(),
        db.profiles.density()
    );

    // 2. Open a simulated Titan V through the portable framework. The same
    //    code runs on any modeled device — only the configuration header
    //    changes (see the `gpu_portability` example).
    let engine = GpuEngine::new(devices::titan_v());
    println!(
        "device:   {} ({})",
        engine.spec().name,
        engine.spec().microarchitecture
    );

    // 3. Identity search: 8 queries, 6 of them noisy copies of database
    //    profiles (ground truth known), 2 random non-members.
    let queries = generate_queries(&db, 8, 6, 0.01, 7);
    let run = engine
        .identity_search(&queries.queries, &db.profiles)
        .expect("identity search");
    let gamma = run.gamma.as_ref().expect("full mode");
    println!("\nidentity search (γ = popcount(query XOR profile); 0 = exact match):");
    for (q, truth) in queries.truth.iter().enumerate() {
        let best = gamma.argmin_in_row(q).unwrap();
        let score = gamma.get(q, best);
        match truth {
            Some(t) => println!(
                "  query {q}: best match profile {best} with {score} differing sites (planted: {t}) {}",
                if best == *t { "[correct]" } else { "[MISS]" }
            ),
            None => println!("  query {q}: best match {best} at {score} differences (non-member)"),
        }
    }
    println!(
        "timing: end-to-end {:.2} ms (init {:.0} ms, kernels {:.3} ms, {} pass(es))",
        run.timing.end_to_end_ns as f64 / 1e6,
        run.timing.init_ns as f64 / 1e6,
        run.timing.kernel_ns as f64 / 1e6,
        run.passes
    );

    // 4. Mixture analysis: which database profiles contributed to a 3-person
    //    DNA mixture? γ = popcount(r AND NOT m) == 0 for true contributors.
    let (mixtures, mixture_matrix) = generate_mixtures(&db, 1, 3, 11);
    let run = engine
        .mixture_analysis(&db.profiles, &mixture_matrix)
        .expect("mixture analysis");
    let gamma = run.gamma.as_ref().unwrap();
    let mut included: Vec<usize> = (0..db.profiles.rows())
        .filter(|&r| gamma.get(r, 0) == 0)
        .collect();
    included.sort_unstable();
    let mut expected = mixtures[0].contributors.clone();
    expected.sort_unstable();
    println!("\nmixture analysis: contributors found {included:?}, planted {expected:?}");
    assert!(
        expected.iter().all(|c| included.contains(c)),
        "every planted contributor must be recovered"
    );

    // 5. Linkage disequilibrium on a slice of the panel (transposed view of
    //    the problem: rows = SNPs would be the usual LD layout; here we
    //    simply self-compare profiles to exercise the AND kernel) — and
    //    verify every γ value against the scalar reference implementation.
    let slice = db.profiles.row_slice(0, 128);
    let run = engine.ld_self(&slice).expect("LD");
    let want = reference_gamma(&slice, &slice, CompareOp::And);
    assert_eq!(
        run.gamma.unwrap().first_mismatch(&want),
        None,
        "bit-exact vs reference"
    );
    println!("\nLD self-comparison of 128 profiles verified bit-exact against the reference.");
    println!(
        "algorithms exercised: {:?}",
        [
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
            Algorithm::LinkageDisequilibrium
        ]
    );
}
