//! NDIS-scale operations walkthrough: the production-shaped features beyond
//! the paper — streaming top-k search, kinship screening, and multi-GPU
//! sharding — on one synthetic case.
//!
//! ```text
//! cargo run --release --example ndis_scale
//! ```

use snp_repro::bitmat::{reference_gamma_self, BitMatrix, CompareOp};
use snp_repro::core::{
    dgx2_like, EngineOptions, ExecMode, GpuEngine, MixtureStrategy, MultiGpuEngine,
};
use snp_repro::gpu_model::devices;
use snp_repro::popgen::forensic::{generate_database, generate_queries, DatabaseConfig};
use snp_repro::popgen::kinship::{
    classify_pairs, generate_family, KinshipClassifier, Relationship,
};

fn main() {
    // ---- Part 1: streaming top-k search (functional scale). -------------
    let db = generate_database(
        &DatabaseConfig {
            profiles: 30_000,
            snps: 512,
            ..Default::default()
        },
        2024,
    );
    let queries = generate_queries(&db, 8, 8, 0.01, 7);
    let engine = GpuEngine::new(devices::titan_v());
    let report = engine
        .identity_search_topk(&queries.queries, &db.profiles, 3)
        .expect("top-k search");
    println!(
        "top-3 search over {} profiles: readback {:.2} MB instead of {:.1} MB",
        db.profiles.rows(),
        report.topk_readback_bytes as f64 / 1e6,
        report.full_readback_bytes as f64 / 1e6
    );
    for (q, list) in report.matches.as_ref().unwrap().iter().enumerate() {
        let truth = queries.truth[q].unwrap();
        let hit = list[0].profile == truth;
        println!(
            "  query {q}: best {} @ {} diffs, runner-up {} @ {} diffs {}",
            list[0].profile,
            list[0].differences,
            list[1].profile,
            list[1].differences,
            if hit { "[correct]" } else { "[MISS]" }
        );
        assert!(hit);
    }

    // ---- Part 2: kinship screening from the same XOR kernel. ------------
    let fam = generate_family(12, 6, 2048, 0.3, 5);
    let gamma = reference_gamma_self(&fam.profiles, CompareOp::Xor);
    let clf = KinshipClassifier { carrier_freq: 0.3 };
    let pairs = classify_pairs(&gamma, 2048, &clf);
    let related: Vec<_> = pairs
        .iter()
        .filter(|&&(_, _, r)| r == Relationship::FirstDegree)
        .map(|&(i, j, _)| (i, j))
        .collect();
    println!(
        "\nkinship screen over {} profiles found {} first-degree pairs:",
        fam.profiles.rows(),
        related.len()
    );
    for &(child, p1, p2) in &fam.parents {
        let both = related.contains(&(p1.min(child), p1.max(child)))
            && related.contains(&(p2.min(child), p2.max(child)));
        println!("  child {child}: parents {p1} and {p2} detected = {both}");
        assert!(both, "pedigree must be recovered");
    }

    // ---- Part 3: multi-GPU timing at true NDIS scale (timing-only). -----
    let big_q = BitMatrix::<u64>::zeros(32, 1024);
    let big_db = BitMatrix::<u64>::zeros(20_971_520, 1024);
    let opts = EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    };
    println!("\n32 queries vs 20.97M profiles x 1024 SNPs (modeled):");
    for n_dev in [1usize, 4, 16] {
        let devs: Vec<_> = dgx2_like().into_iter().take(n_dev).collect();
        let run = MultiGpuEngine::new(devs)
            .with_options(opts)
            .identity_search(&big_q, &big_db)
            .expect("multi-GPU run");
        println!(
            "  {:>2} device(s): end-to-end {:>7.1} ms",
            n_dev,
            run.end_to_end_ns as f64 / 1e6
        );
    }
    println!("\n(see `cargo run -p snp-bench --bin extensions_report` for the full tables)");
}
