//! Portability walkthrough: take a *new* (hypothetical) GPU, run the §V-B
//! microbenchmark suite to recover its hardware parameters, derive the
//! kernel configuration from the analytical model (Eqs. 4–7), and run the
//! same LD workload on it and on all three evaluated devices — the paper's
//! central claim that "users of the framework are expected to only identify
//! the hardware features of the GPU".
//!
//! ```text
//! cargo run --release --example gpu_portability
//! ```

use snp_repro::bitmat::{reference_gamma, CompareOp};
use snp_repro::core::{Algorithm, GpuEngine};
use snp_repro::gpu_model::config::{derive_config, McRule, ProblemShape};
use snp_repro::gpu_model::{devices, InstrClass, PipelineSpec};
use snp_repro::microbench::recover_parameters;
use snp_repro::popgen::random_dense;

/// A made-up next-generation part: wider popcount pipes, more shared memory.
fn hypothetical_gpu() -> snp_repro::gpu_model::DeviceSpec {
    let mut dev = devices::titan_v();
    dev.name = "Hypothetica X1".to_string();
    dev.microarchitecture = "Model".to_string();
    dev.frequency_ghz = 1.8;
    dev.n_cores = 48;
    dev.pipelines = vec![
        PipelineSpec::new("add", 32, &[InstrClass::IntAdd, InstrClass::Scalar]),
        PipelineSpec::new("logic", 32, &[InstrClass::Logic, InstrClass::Not]),
        PipelineSpec::new("popc", 16, &[InstrClass::Popc]),
        PipelineSpec::new(
            "lsu",
            16,
            &[
                InstrClass::LoadGlobal,
                InstrClass::LoadShared,
                InstrClass::StoreGlobal,
                InstrClass::StoreShared,
            ],
        ),
    ];
    dev.l_fn = 5;
    dev.shared_mem_bytes = 96 * 1024;
    dev.shared_mem_reserved_bytes = 0;
    dev
}

fn main() {
    let new_dev = hypothetical_gpu();

    // Step 1 (§V-B/§V-C/§V-D): microbenchmark the unknown hardware.
    println!("microbenchmarking {} ...", new_dev.name);
    let recovered = recover_parameters(&new_dev);
    println!(
        "  L_fn (popc chain): {:.1} cycles",
        recovered.latency_for(InstrClass::Popc).unwrap()
    );
    for class in [InstrClass::IntAdd, InstrClass::Logic, InstrClass::Popc] {
        println!(
            "  N_fn^{class}: {} units/cluster",
            recovered.units_for(class).unwrap()
        );
    }
    assert_eq!(
        recovered.units_for(InstrClass::Popc),
        Some(16),
        "recovery must see the wider pipe"
    );

    // Step 2 (§V-A): derive the configuration header from hardware features.
    let shape = ProblemShape {
        m: 2048,
        n: 2048,
        k_words: 512,
    };
    let cfg = derive_config(&new_dev, shape, McRule::Banks);
    println!(
        "\nderived configuration: m_c={} m_r={} k_c={} n_r={} grid={}x{} groups/cluster={}",
        cfg.m_c, cfg.m_r, cfg.k_c, cfg.n_r, cfg.grid_m, cfg.grid_n, cfg.groups_per_cluster
    );
    assert!(cfg.violations(&new_dev).is_empty());
    assert_eq!(
        cfg.k_c,
        96 * 1024 / (4 * 32),
        "Eq. 6 follows the bigger shared memory"
    );

    // Step 3: the same workload, unchanged, on every device.
    let panel = random_dense(768, 6_000, 5);
    let want = reference_gamma(&panel, &panel, CompareOp::And);
    println!("\nLD on a 768 x 6000 panel:");
    let mut all = devices::all_gpus();
    all.push(new_dev);
    for dev in all {
        let engine = GpuEngine::new(dev.clone());
        let run = engine
            .compare(&panel, &panel, Algorithm::LinkageDisequilibrium)
            .unwrap();
        assert_eq!(
            run.gamma.unwrap().first_mismatch(&want),
            None,
            "{}: results must be identical on every device",
            dev.name
        );
        println!(
            "  {:<14} kernel {:>8.3} ms  ({:>6.0} G word-ops/s, config n_r={} k_c={})",
            dev.name,
            run.timing.kernel_ns as f64 / 1e6,
            run.kernel_word_ops_per_sec / 1e9,
            run.config.n_r,
            run.config.k_c,
        );
    }
    println!("\nidentical results everywhere; only the configuration header changed.");
}
