//! Forensic identity search at scale: build an NDIS-like database slice,
//! search planted suspects with FastID (XOR + popcount), and compare the
//! portable framework across all three simulated GPUs — including the pass
//! planner chunking the database on the memory-constrained GTX 980.
//!
//! ```text
//! cargo run --release --example forensic_search
//! ```

use snp_repro::core::{EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_repro::gpu_model::devices;
use snp_repro::popgen::forensic::{generate_database, generate_queries, DatabaseConfig};

fn main() {
    // A functional-scale database (the timing-only NDIS-scale sweep lives in
    // `cargo run -p snp-bench --bin fig8_fastid`).
    let db = generate_database(
        &DatabaseConfig {
            profiles: 50_000,
            snps: 512,
            ..Default::default()
        },
        1234,
    );
    let queries = generate_queries(&db, 32, 24, 0.01, 99);
    println!(
        "database: {} profiles x {} SNPs; queries: 32 (24 planted with 1% genotyping noise)",
        db.profiles.rows(),
        db.profiles.cols()
    );

    for dev in devices::all_gpus() {
        let engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        });
        let run = engine
            .identity_search(&queries.queries, &db.profiles)
            .expect("search");
        let gamma = run.gamma.as_ref().unwrap();

        // Score the search: every planted query must rank its source first.
        let mut hits = 0;
        let mut separations = Vec::new();
        for (q, truth) in queries.truth.iter().enumerate() {
            let best = gamma.argmin_in_row(q).unwrap();
            if let Some(t) = truth {
                if best == *t {
                    hits += 1;
                }
                // Separation between the true match and the best impostor.
                let true_score = gamma.get(q, *t);
                let impostor = (0..db.profiles.rows())
                    .filter(|&j| j != *t)
                    .map(|j| gamma.get(q, j))
                    .min()
                    .unwrap();
                separations.push(impostor as i64 - true_score as i64);
            }
        }
        let min_sep = separations.iter().min().unwrap();
        println!(
            "\n{:<8} [{}]: {}/{} planted queries identified; min match-vs-impostor margin {} sites",
            dev.name, dev.microarchitecture, hits, 24, min_sep
        );
        println!(
            "  config: m_c={} m_r={} k_c={} n_r={} grid={}x{}; {} pass(es)",
            run.config.m_c,
            run.config.m_r,
            run.config.k_c,
            run.config.n_r,
            run.config.grid_m,
            run.config.grid_n,
            run.passes
        );
        println!(
            "  modeled time: end-to-end {:.1} ms (kernel {:.2} ms, in {:.2} ms, out {:.2} ms); kernel rate {:.0} G word-ops/s",
            run.timing.end_to_end_ns as f64 / 1e6,
            run.timing.kernel_ns as f64 / 1e6,
            run.timing.transfer_in_ns as f64 / 1e6,
            run.timing.transfer_out_ns as f64 / 1e6,
            run.kernel_word_ops_per_sec / 1e9
        );
        assert_eq!(
            hits, 24,
            "{}: all planted queries must be identified",
            dev.name
        );
    }
    println!("\nAll three devices produced identical, correct match tables — the point of a");
    println!("portable framework: one algorithm, per-device configuration headers.");
}
