//! Standalone validator for Chrome `trace_event` JSON emitted by
//! `snpgpu trace` — CI runs it against a freshly generated artifact to
//! prove the file parses and is schema-well-formed.
//!
//! ```text
//! cargo run --example validate_trace -- trace.json
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let Some(path) = std::env::args().nth(1) else {
        eprintln!("usage: validate_trace <trace.json>");
        return ExitCode::FAILURE;
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("validate_trace: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match snp_trace::chrome::validate(&text) {
        Ok(stats) => {
            println!(
                "{path}: OK — {} metadata, {} slices, {} counter events",
                stats.metadata, stats.slices, stats.counters
            );
            if stats.slices == 0 {
                eprintln!("validate_trace: {path} contains no slices");
                return ExitCode::FAILURE;
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("validate_trace: {path}: {e}");
            ExitCode::FAILURE
        }
    }
}
