//! DNA mixture analysis: identify which reference profiles contributed to
//! multi-person mixtures (paper §II-C), comparing the direct AND-NOT kernel
//! with the pre-negated-database strategy and showing why the choice matters
//! on Vega-class hardware (Fig. 9).
//!
//! ```text
//! cargo run --release --example mixture_analysis
//! ```

use snp_repro::core::{EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_repro::gpu_model::devices;
use snp_repro::popgen::forensic::{generate_database, generate_mixtures, DatabaseConfig};

fn main() {
    let db = generate_database(
        &DatabaseConfig {
            profiles: 5_000,
            snps: 768,
            ..Default::default()
        },
        7,
    );
    let (mixtures, mixture_matrix) = generate_mixtures(&db, 8, 3, 21);
    println!(
        "{} reference profiles x {} SNPs; {} mixtures of 3 contributors each",
        db.profiles.rows(),
        db.profiles.cols(),
        mixtures.len()
    );

    // Run both strategies on a Vega 64, where they differ most.
    let dev = devices::vega_64();
    let mut results = Vec::new();
    for strategy in [MixtureStrategy::Direct, MixtureStrategy::PreNegate] {
        let engine = GpuEngine::new(dev.clone()).with_options(EngineOptions {
            mode: ExecMode::Full,
            double_buffer: true,
            mixture: strategy,
            ..Default::default()
        });
        let run = engine
            .mixture_analysis(&db.profiles, &mixture_matrix)
            .expect("mixture");
        println!(
            "\nstrategy {:?}: kernel {:.2} ms ({:.0} G word-ops/s modeled on {})",
            strategy,
            run.timing.kernel_ns as f64 / 1e6,
            run.kernel_word_ops_per_sec / 1e9,
            dev.name
        );
        results.push(run);
    }
    let direct = results[0].gamma.take().unwrap();
    let pre = results[1].gamma.take().unwrap();
    assert_eq!(
        direct.first_mismatch(&pre),
        None,
        "strategies must agree bit-exactly"
    );
    assert!(
        results[1].timing.kernel_ns < results[0].timing.kernel_ns,
        "pre-negation must be faster on Vega (no fused AND-NOT)"
    );

    // γ[r][m] = popcount(r AND NOT mixture) == 0  <=>  r is consistent with
    // being a contributor: every one of its minor alleles appears in the mix.
    println!("\ncontributor recovery (γ = 0 test):");
    let mut false_positives = 0usize;
    for (mi, mix) in mixtures.iter().enumerate() {
        let mut found: Vec<usize> = (0..db.profiles.rows())
            .filter(|&r| direct.get(r, mi) == 0)
            .collect();
        found.sort_unstable();
        let mut planted = mix.contributors.clone();
        planted.sort_unstable();
        let extras = found.iter().filter(|r| !planted.contains(r)).count();
        false_positives += extras;
        assert!(
            planted.iter().all(|c| found.contains(c)),
            "mixture {mi}: contributor missed"
        );
        println!(
            "  mixture {mi}: contributors {planted:?} all recovered; {extras} coincidental inclusions"
        );
    }
    println!(
        "\nall 24 planted contributors recovered; {false_positives} coincidental inclusions across {} x {} tests",
        db.profiles.rows(),
        mixtures.len()
    );
    println!("(coincidental inclusion probability falls geometrically with SNP count — the");
    println!("paper's case for panels of hundreds to thousands of SNPs.)");
}
