//! Benchmark regression gate over the committed `BENCH_pr*.json` snapshots.
//!
//! Every PR's criterion-shim output is normalized to one schema:
//!
//! ```json
//! {"schema_version":1,"pr":N,"entries":[{"id":"...","ns_per_iter":...,...}]}
//! ```
//!
//! This example loads every snapshot in the repository root (or the paths
//! given as arguments), diffs the latest snapshot against the previous one,
//! and exits nonzero when any benchmark shared by both regressed more than
//! 10% in `ns_per_iter`. Raw criterion-shim JSONL (one entry per line, as
//! `CRITERION_SHIM_JSON` appends it) is accepted too, so a fresh bench run
//! can be gated before being normalized.
//!
//! ```text
//! cargo run --release --example check_bench
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use snp_trace::json::{self, Value};

/// Maximum tolerated `ns_per_iter` growth for a benchmark id present in
/// both snapshots.
const MAX_REGRESSION: f64 = 0.10;

/// One parsed snapshot: PR number and `id → ns_per_iter`.
struct Snapshot {
    pr: u32,
    path: String,
    entries: BTreeMap<String, f64>,
}

fn entry_of(v: &Value) -> Option<(String, f64)> {
    let obj = v.as_obj()?;
    let id = obj.get("id")?.as_str()?.to_string();
    let ns = obj.get("ns_per_iter")?.as_num()?;
    Some((id, ns))
}

/// Parses either the wrapped schema or raw criterion-shim JSONL.
fn parse_snapshot(path: &str, text: &str) -> Result<Snapshot, String> {
    let mut entries = BTreeMap::new();
    let mut pr = None;
    if let Ok(v) = json::parse(text) {
        if let Some(obj) = v.as_obj() {
            pr = obj.get("pr").and_then(Value::as_num).map(|n| n as u32);
            let list = obj
                .get("entries")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{path}: wrapped snapshot without \"entries\""))?;
            for e in list {
                let (id, ns) =
                    entry_of(e).ok_or_else(|| format!("{path}: malformed entry {e:?}"))?;
                entries.insert(id, ns);
            }
        } else {
            return Err(format!("{path}: top-level JSON is not an object"));
        }
    } else {
        // Raw shim output: one JSON object per line.
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line).map_err(|e| format!("{path}: bad JSONL line: {e}"))?;
            let (id, ns) = entry_of(&v).ok_or_else(|| format!("{path}: malformed line"))?;
            entries.insert(id, ns);
        }
    }
    // Fall back to the `BENCH_pr<N>.json` file name for the PR number.
    let pr = pr
        .or_else(|| {
            path.rsplit('/')
                .next()?
                .strip_prefix("BENCH_pr")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .ok_or_else(|| format!("{path}: cannot determine PR number"))?;
    Ok(Snapshot {
        pr,
        path: path.to_string(),
        entries,
    })
}

fn discover() -> Vec<String> {
    let mut found: Vec<String> = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_pr") && n.ends_with(".json"))
        .collect();
    found.sort();
    found
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() { discover() } else { args };
    if paths.len() < 2 {
        eprintln!(
            "need at least two snapshots to diff (found {})",
            paths.len()
        );
        return ExitCode::FAILURE;
    }

    let mut snaps = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_snapshot(path, &text) {
            Ok(s) => snaps.push(s),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    snaps.sort_by_key(|s| s.pr);

    // Gaps in the PR sequence are worth knowing about: a missing snapshot
    // means that PR's perf claims are not machine-checkable (PR 3, the
    // hot-path optimisation PR, predates the shared schema and recorded
    // its numbers only in EXPERIMENTS.md prose).
    for w in snaps.windows(2) {
        for missing in (w[0].pr + 1)..w[1].pr {
            println!("note: no snapshot for PR {missing}");
        }
    }

    let prev = &snaps[snaps.len() - 2];
    let latest = &snaps[snaps.len() - 1];
    println!(
        "diffing {} (PR {}) against {} (PR {})",
        latest.path, latest.pr, prev.path, prev.pr
    );

    let mut regressions = 0usize;
    let mut shared = 0usize;
    for (id, &ns) in &latest.entries {
        let Some(&base) = prev.entries.get(id) else {
            continue;
        };
        shared += 1;
        let delta = (ns - base) / base;
        let flag = if delta > MAX_REGRESSION {
            regressions += 1;
            "  REGRESSION"
        } else {
            ""
        };
        println!(
            "  {id}: {base:.1} -> {ns:.1} ns/iter ({:+.1}%){flag}",
            delta * 100.0
        );
    }
    println!(
        "{shared} shared benchmark(s), {regressions} regression(s) beyond {:.0}%",
        MAX_REGRESSION * 100.0
    );
    if shared == 0 {
        println!("(no overlapping ids — nothing to gate; snapshots cover different suites)");
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
