//! Benchmark regression gate over the committed `BENCH_pr*.json` snapshots.
//!
//! Every PR's criterion-shim output is normalized to one schema:
//!
//! ```json
//! {"schema_version":1,"pr":N,"entries":[{"id":"...","ns_per_iter":...,...}]}
//! ```
//!
//! This example loads every snapshot in the repository root (or the paths
//! given as arguments), diffs the latest snapshot against the previous one,
//! and exits nonzero when any benchmark shared by both regressed more than
//! 10% in `ns_per_iter`. Entries may also carry optional `p50_ns` and
//! `p99_ns` latency percentiles (the loadgen entries do, from PR 7 on);
//! when a percentile is present in both snapshots it is regression-gated
//! exactly like `ns_per_iter`. Raw criterion-shim JSONL (one entry per
//! line, as `CRITERION_SHIM_JSON` appends it) is accepted too, so a fresh
//! bench run can be gated before being normalized.
//!
//! ```text
//! cargo run --release --example check_bench
//! ```

use std::collections::BTreeMap;
use std::process::ExitCode;

use snp_trace::json::{self, Value};

/// Maximum tolerated `ns_per_iter` growth for a benchmark id present in
/// both snapshots.
const MAX_REGRESSION: f64 = 0.10;

/// One benchmark's gated metrics. `ns_per_iter` is required; the latency
/// percentiles are optional — loadgen entries carry them, kernel-model and
/// microkernel entries do not.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry {
    ns_per_iter: f64,
    p50_ns: Option<f64>,
    p99_ns: Option<f64>,
}

/// One parsed snapshot: PR number and `id → metrics`.
struct Snapshot {
    pr: u32,
    path: String,
    entries: BTreeMap<String, Entry>,
}

fn entry_of(v: &Value) -> Option<(String, Entry)> {
    let obj = v.as_obj()?;
    let id = obj.get("id")?.as_str()?.to_string();
    let ns = obj.get("ns_per_iter")?.as_num()?;
    Some((
        id,
        Entry {
            ns_per_iter: ns,
            p50_ns: obj.get("p50_ns").and_then(Value::as_num),
            p99_ns: obj.get("p99_ns").and_then(Value::as_num),
        },
    ))
}

/// Parses either the wrapped schema or raw criterion-shim JSONL.
fn parse_snapshot(path: &str, text: &str) -> Result<Snapshot, String> {
    let mut entries = BTreeMap::new();
    let mut pr = None;
    if let Ok(v) = json::parse(text) {
        if let Some((id, ns)) = entry_of(&v) {
            // A raw shim file with exactly one line is itself a valid JSON
            // document: one bare entry, not a wrapped snapshot.
            entries.insert(id, ns);
        } else if let Some(obj) = v.as_obj() {
            pr = obj.get("pr").and_then(Value::as_num).map(|n| n as u32);
            let list = obj
                .get("entries")
                .and_then(Value::as_arr)
                .ok_or_else(|| format!("{path}: wrapped snapshot without \"entries\""))?;
            for e in list {
                let (id, ns) =
                    entry_of(e).ok_or_else(|| format!("{path}: malformed entry {e:?}"))?;
                entries.insert(id, ns);
            }
        } else {
            return Err(format!("{path}: top-level JSON is not an object"));
        }
    } else {
        // Raw shim output: one JSON object per line.
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            let v = json::parse(line).map_err(|e| format!("{path}: bad JSONL line: {e}"))?;
            let (id, ns) = entry_of(&v).ok_or_else(|| format!("{path}: malformed line"))?;
            entries.insert(id, ns);
        }
    }
    // Fall back to the `BENCH_pr<N>.json` file name for the PR number.
    let pr = pr
        .or_else(|| {
            path.rsplit('/')
                .next()?
                .strip_prefix("BENCH_pr")?
                .strip_suffix(".json")?
                .parse()
                .ok()
        })
        .ok_or_else(|| format!("{path}: cannot determine PR number"))?;
    Ok(Snapshot {
        pr,
        path: path.to_string(),
        entries,
    })
}

fn discover() -> Vec<String> {
    let mut found: Vec<String> = std::fs::read_dir(".")
        .into_iter()
        .flatten()
        .flatten()
        .filter_map(|e| e.file_name().into_string().ok())
        .filter(|n| n.starts_with("BENCH_pr") && n.ends_with(".json"))
        .collect();
    found.sort();
    found
}

/// Sorts the snapshots by PR and selects the pair to diff: the latest
/// snapshot against the previous *available* one. PR numbers with no
/// snapshot are returned as explicit gaps so the caller warns instead of
/// silently mis-pairing (PR 3, the hot-path optimisation PR, predates the
/// shared schema and recorded its numbers only in EXPERIMENTS.md prose).
fn select_pair(snaps: &mut Vec<Snapshot>) -> Result<(usize, usize, Vec<u32>), String> {
    snaps.sort_by_key(|s| s.pr);
    snaps.dedup_by_key(|s| s.pr);
    if snaps.len() < 2 {
        return Err(format!(
            "need at least two distinct PR snapshots to diff (found {})",
            snaps.len()
        ));
    }
    let mut gaps = Vec::new();
    for w in snaps.windows(2) {
        gaps.extend((w[0].pr + 1)..w[1].pr);
    }
    Ok((snaps.len() - 2, snaps.len() - 1, gaps))
}

/// Diffs `latest` against `prev`, printing one line per shared metric.
/// A percentile is gated only when both snapshots recorded it. Returns
/// `(shared ids, metric regressions)`.
fn diff(prev: &Snapshot, latest: &Snapshot) -> (usize, usize) {
    let mut regressions = 0usize;
    let mut shared = 0usize;
    for (id, e) in &latest.entries {
        let Some(base) = prev.entries.get(id) else {
            continue;
        };
        shared += 1;
        let metrics = [
            ("ns/iter", Some(base.ns_per_iter), Some(e.ns_per_iter)),
            ("p50_ns", base.p50_ns, e.p50_ns),
            ("p99_ns", base.p99_ns, e.p99_ns),
        ];
        for (name, b, n) in metrics {
            let (Some(b), Some(n)) = (b, n) else {
                continue;
            };
            let delta = (n - b) / b;
            let flag = if delta > MAX_REGRESSION {
                regressions += 1;
                "  REGRESSION"
            } else {
                ""
            };
            println!(
                "  {id} [{name}]: {b:.1} -> {n:.1} ({:+.1}%){flag}",
                delta * 100.0
            );
        }
    }
    (shared, regressions)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let paths = if args.is_empty() { discover() } else { args };
    let mut snaps = Vec::new();
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match parse_snapshot(path, &text) {
            Ok(s) => snaps.push(s),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let (prev_i, latest_i, gaps) = match select_pair(&mut snaps) {
        Ok(sel) => sel,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for missing in &gaps {
        println!("note: no snapshot for PR {missing} — skipping it, not mis-pairing");
    }
    let (prev, latest) = (&snaps[prev_i], &snaps[latest_i]);
    println!(
        "diffing {} (PR {}) against {} (PR {})",
        latest.path, latest.pr, prev.path, prev.pr
    );

    let (shared, regressions) = diff(prev, latest);
    println!(
        "{shared} shared benchmark(s), {regressions} regression(s) beyond {:.0}%",
        MAX_REGRESSION * 100.0
    );
    if shared == 0 {
        println!("(no overlapping ids — nothing to gate; snapshots cover different suites)");
    }
    if regressions > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pr: u32, entries: &[(&str, f64)]) -> Snapshot {
        Snapshot {
            pr,
            path: format!("BENCH_pr{pr}.json"),
            entries: entries
                .iter()
                .map(|(id, ns)| {
                    (
                        id.to_string(),
                        Entry {
                            ns_per_iter: *ns,
                            p50_ns: None,
                            p99_ns: None,
                        },
                    )
                })
                .collect(),
        }
    }

    fn lat(ns: f64, p50: f64, p99: f64) -> Entry {
        Entry {
            ns_per_iter: ns,
            p50_ns: Some(p50),
            p99_ns: Some(p99),
        }
    }

    /// The PR 3 gap: with snapshots for PRs 1, 2, and 4 only, the latest
    /// (4) is diffed against the previous available (2) and the missing
    /// PR 3 is reported as a gap — never paired against, never silently
    /// skipped.
    #[test]
    fn gap_in_pr_sequence_is_reported_not_mispaired() {
        let mut snaps = vec![
            snap(4, &[("a", 100.0)]),
            snap(1, &[("a", 90.0)]),
            snap(2, &[("a", 95.0)]),
        ];
        let (prev_i, latest_i, gaps) = select_pair(&mut snaps).unwrap();
        assert_eq!(gaps, vec![3]);
        assert_eq!(snaps[prev_i].pr, 2);
        assert_eq!(snaps[latest_i].pr, 4);
    }

    #[test]
    fn fewer_than_two_snapshots_is_an_error() {
        let mut one = vec![snap(6, &[("a", 1.0)])];
        assert!(select_pair(&mut one).is_err());
        // Two files for the same PR are one snapshot, not a diffable pair.
        let mut dup = vec![snap(6, &[("a", 1.0)]), snap(6, &[("a", 2.0)])];
        assert!(select_pair(&mut dup).is_err());
    }

    #[test]
    fn diff_flags_only_regressions_beyond_tolerance() {
        let prev = snap(5, &[("fast", 100.0), ("slow", 100.0), ("gone", 1.0)]);
        let latest = snap(6, &[("fast", 105.0), ("slow", 125.0), ("new", 1.0)]);
        let (shared, regressions) = diff(&prev, &latest);
        assert_eq!(shared, 2, "only ids in both snapshots are gated");
        assert_eq!(regressions, 1, "only the >10% growth regresses");
    }

    #[test]
    fn wrapped_and_raw_snapshots_parse_identically() {
        let wrapped = r#"{"schema_version":1,"pr":6,"entries":[{"id":"x","ns_per_iter":2.5}]}"#;
        let raw = "{\"id\":\"x\",\"ns_per_iter\":2.5}\n";
        let w = parse_snapshot("BENCH_pr6.json", wrapped).unwrap();
        let r = parse_snapshot("BENCH_pr6.json", raw).unwrap();
        assert_eq!(w.pr, 6);
        assert_eq!(r.pr, 6, "raw JSONL takes the PR from the file name");
        assert_eq!(w.entries, r.entries);
    }

    #[test]
    fn latency_percentiles_parse_and_gate_like_ns_per_iter() {
        let wrapped = concat!(
            r#"{"schema_version":1,"pr":7,"entries":["#,
            r#"{"id":"loadgen/ld","ns_per_iter":100.0,"p50_ns":50.0,"p99_ns":200.0}]}"#,
        );
        let s = parse_snapshot("BENCH_pr7.json", wrapped).unwrap();
        assert_eq!(s.entries["loadgen/ld"], lat(100.0, 50.0, 200.0));

        // p99 regresses 50% while ns_per_iter and p50 hold: one regression.
        let mut prev = snap(6, &[]);
        prev.entries
            .insert("loadgen/ld".into(), lat(100.0, 50.0, 200.0));
        let mut latest = snap(7, &[]);
        latest
            .entries
            .insert("loadgen/ld".into(), lat(100.0, 50.0, 300.0));
        let (shared, regressions) = diff(&prev, &latest);
        assert_eq!((shared, regressions), (1, 1));
    }

    #[test]
    fn missing_percentiles_are_not_gated() {
        // The baseline has no percentiles (pre-PR-7 entry); the latest
        // does. Nothing to compare them against — only ns/iter is gated.
        let prev = snap(6, &[("loadgen/ld", 100.0)]);
        let mut latest = snap(7, &[]);
        latest
            .entries
            .insert("loadgen/ld".into(), lat(100.0, 50.0, 99_999.0));
        let (shared, regressions) = diff(&prev, &latest);
        assert_eq!((shared, regressions), (1, 0));
    }
}
