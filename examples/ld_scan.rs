//! Linkage-disequilibrium scan: generate a block-structured population
//! panel, compute all pairwise LD with the high-performance CPU engine, and
//! report r² decay within and across haplotype blocks — the population-
//! genetics workload of the paper's §II-A, end to end.
//!
//! ```text
//! cargo run --release --example ld_scan
//! ```

use snp_repro::cpu::CpuEngine;
use snp_repro::popgen::ld_stats::ld_pair;
use snp_repro::popgen::population::{generate_panel, PanelConfig};
use snp_repro::popgen::FrequencySpectrum;

fn main() {
    let cfg = PanelConfig {
        snps: 512,
        samples: 4_096,
        spectrum: FrequencySpectrum::Uniform { lo: 0.1, hi: 0.5 },
        block_len: 16,
        within_block_flip: 0.03,
    };
    let panel = generate_panel(&cfg, 2024);
    println!(
        "panel: {} SNPs x {} haplotypes, {} blocks, density {:.3}",
        cfg.snps,
        cfg.samples,
        panel.block_of.last().unwrap() + 1,
        panel.matrix.density()
    );

    // The whole LD computation is one AND-popcount GEMM of the panel with
    // itself (paper Eq. 1) — here on the multithreaded BLIS CPU engine.
    let engine = CpuEngine::new();
    let t0 = std::time::Instant::now();
    let gamma = engine.ld_self(&panel.matrix);
    let dt = t0.elapsed();
    let word_ops = cfg.snps * cfg.snps * panel.matrix.words_per_row();
    println!(
        "CPU popcount-GEMM: {:.1} ms ({:.2} G word-ops/s on this host)",
        dt.as_secs_f64() * 1e3,
        word_ops as f64 / dt.as_secs_f64() / 1e9
    );

    // r² as a function of SNP distance, split by same-block vs cross-block.
    let mut by_distance: Vec<(f64, usize)> = vec![(0.0, 0); 33];
    let mut cross_block = (0.0, 0usize);
    for a in 0..cfg.snps {
        for b in (a + 1)..cfg.snps.min(a + 33) {
            let ld = ld_pair(&gamma, cfg.samples, a, b);
            if panel.block_of[a] == panel.block_of[b] {
                let d = b - a;
                by_distance[d].0 += ld.r2;
                by_distance[d].1 += 1;
            } else {
                cross_block.0 += ld.r2;
                cross_block.1 += 1;
            }
        }
    }
    println!("\nmean r² by intra-block distance (LD decays with distance):");
    for d in [1usize, 2, 4, 8, 12, 15] {
        let (sum, n) = by_distance[d];
        if n > 0 {
            println!("  distance {d:>2}: r² = {:.3}  ({n} pairs)", sum / n as f64);
        }
    }
    let cross = cross_block.0 / cross_block.1.max(1) as f64;
    println!("  cross-block:  r² = {cross:.3}  ({} pairs)", cross_block.1);

    let (d1, n1) = by_distance[1];
    assert!(
        d1 / n1 as f64 > 5.0 * cross.max(1e-3),
        "adjacent same-block SNPs must show far stronger LD than cross-block pairs"
    );
    println!("\nshape verified: strong LD inside blocks, near-equilibrium across blocks.");
}
