//! Memory-limit behaviour across the stack: allocation caps, pass planning,
//! virtual (timing-only) vs full execution equivalence, and double-buffering
//! timing properties.

use snp_repro::bitmat::BitMatrix;
use snp_repro::core::{
    plan_passes, Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy,
};
use snp_repro::gpu_model::devices;
use snp_repro::gpu_model::presets::preset_for;
use snp_repro::gpu_sim::{Gpu, SimError};
use snp_repro::popgen::random_dense;

fn timing_only(double_buffer: bool) -> EngineOptions {
    EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    }
}

#[test]
fn allocation_caps_enforced_per_device() {
    for dev in devices::all_gpus() {
        let gpu = Gpu::new(dev.clone());
        let over = (dev.max_alloc_bytes / 4 + 1) as usize;
        assert!(
            matches!(gpu.create_buffer(over), Err(SimError::AllocTooLarge { .. })),
            "{}",
            dev.name
        );
        assert!(
            matches!(
                gpu.create_virtual_buffer(over),
                Err(SimError::AllocTooLarge { .. })
            ),
            "{}",
            dev.name
        );
    }
}

#[test]
fn ndis_scale_pass_counts_order_by_memory_size() {
    let passes = |dev: &snp_repro::gpu_model::DeviceSpec| {
        let cfg = preset_for(dev, Algorithm::IdentitySearch).unwrap();
        plan_passes(dev, &cfg, 32, 20_971_520, 32, true)
            .unwrap()
            .passes()
    };
    let gtx = passes(&devices::gtx_980());
    let titan = passes(&devices::titan_v());
    let vega = passes(&devices::vega_64());
    assert!(
        gtx > titan,
        "GTX 980 ({gtx}) must chunk more than Titan V ({titan})"
    );
    assert!(gtx > 1, "the 0.983 GiB limit must force chunking");
    assert!(
        vega <= gtx,
        "Vega 64 has more usable memory than the GTX 980"
    );
}

#[test]
fn chunked_execution_still_bit_exact() {
    // Shrink a device until everything must be chunked, then verify.
    let mut dev = devices::titan_v();
    dev.name = "Titan mini".into();
    dev.max_alloc_bytes = 96 * 1024;
    dev.global_mem_bytes = 1 << 20;
    let a = random_dense(40, 800, 1);
    let b = random_dense(700, 800, 2);
    let run = GpuEngine::new(dev).identity_search(&a, &b).unwrap();
    assert!(run.passes > 1);
    let want = snp_repro::cpu::CpuEngine::new().identity_search(&a, &b);
    assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
}

#[test]
fn impossible_problems_error_cleanly() {
    let dev = devices::gtx_980();
    let cfg = preset_for(&dev, Algorithm::IdentitySearch).unwrap();
    // One 32-row A tile bigger than the max allocation: unplannable.
    let k = (dev.max_alloc_bytes / 4 / 32 + 1) as usize;
    let err = plan_passes(&dev, &cfg, 32, 1000, k, true).unwrap_err();
    assert!(err.to_string().contains("cannot plan"));
}

#[test]
fn virtual_and_full_runs_have_identical_timelines() {
    let a = random_dense(48, 3000, 3);
    let b = random_dense(512, 3000, 4);
    for dev in devices::all_gpus() {
        let full = GpuEngine::new(dev.clone()).identity_search(&a, &b).unwrap();
        let timed = GpuEngine::new(dev.clone())
            .with_options(timing_only(true))
            .identity_search(&a, &b)
            .unwrap();
        assert_eq!(full.timing, timed.timing, "{}", dev.name);
        assert_eq!(full.passes, timed.passes);
        assert_eq!(full.word_ops, timed.word_ops);
    }
}

#[test]
fn double_buffering_never_hurts_and_helps_when_chunked() {
    let queries = BitMatrix::<u64>::zeros(32, 1024);
    let database = BitMatrix::<u64>::zeros(20_971_520, 1024);
    for dev in devices::all_gpus() {
        let on = GpuEngine::new(dev.clone())
            .with_options(timing_only(true))
            .identity_search(&queries, &database)
            .unwrap();
        let off = GpuEngine::new(dev.clone())
            .with_options(timing_only(false))
            .identity_search(&queries, &database)
            .unwrap();
        assert!(
            on.timing.end_to_end_ns <= off.timing.end_to_end_ns,
            "{}: double buffering must not slow the pipeline",
            dev.name
        );
    }
}

#[test]
fn end_to_end_time_decomposition_is_sane() {
    let a = random_dense(64, 2048, 5);
    let run = GpuEngine::new(devices::gtx_980()).ld_self(&a).unwrap();
    let t = &run.timing;
    assert!(t.end_to_end_ns >= t.init_ns);
    assert!(
        t.end_to_end_ns >= t.kernel_ns,
        "kernels are inside the end-to-end window"
    );
    // Serial lower bound can exceed end-to-end only through overlap; here
    // everything is small, so the sum should be close to the total.
    let serial = t.init_ns + t.pack_ns + t.kernel_ns + t.transfer_in_ns + t.transfer_out_ns;
    assert!(
        serial >= t.end_to_end_ns - 1_000,
        "components must cover the timeline"
    );
}
