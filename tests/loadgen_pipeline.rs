//! Cross-crate acceptance tests for the query-grained telemetry layer:
//! the seeded load generator, SLO evaluation, the query-attributed merged
//! timeline, and the flight-recorder post-mortem path.

use snp_gpu_model::devices;
use snp_load::{run, saturation_sweep, FaultSpec, LoadConfig, Slo, SloPolicy, Template};

fn base_cfg() -> LoadConfig {
    let mut cfg = LoadConfig::new(
        devices::titan_v(),
        vec![
            Template::Ld,
            Template::FastId,
            Template::FastIdTopK,
            Template::Mixture,
        ],
    );
    cfg.queries = 24;
    cfg
}

#[test]
fn seeded_sweep_json_is_byte_reproducible_with_per_algorithm_percentiles() {
    let mut cfg = base_cfg();
    cfg.record_timeline = false;
    let a = saturation_sweep(&cfg, &[0.5, 1.0, 4.0]).to_json();
    let b = saturation_sweep(&cfg, &[0.5, 1.0, 4.0]).to_json();
    assert_eq!(a, b, "seeded sweep must render byte-identically");

    let doc = snp_trace::json::parse(&a).expect("sweep report is valid JSON");
    let points = doc.as_obj().unwrap()["points"].as_arr().unwrap();
    assert_eq!(points.len(), 3);
    for p in points {
        let report = p.as_obj().unwrap()["report"].as_obj().unwrap();
        let algs = report["algorithms"].as_arr().unwrap();
        assert!(!algs.is_empty());
        for a in algs {
            let o = a.as_obj().unwrap();
            for key in ["p50_ns", "p95_ns", "p99_ns"] {
                assert!(o[key].as_num().is_some(), "algorithm entry missing {key}");
            }
        }
    }
}

#[test]
fn impossible_slo_breaches_and_is_reported() {
    let mut cfg = base_cfg();
    cfg.slo = SloPolicy {
        per_algorithm: Vec::new(),
        default: Slo {
            p50_ns: 1,
            p99_ns: 1,
            error_budget: 0.5,
        },
    };
    let report = run(&cfg);
    assert!(report.breached, "1 ns objectives must breach");
    assert!(report.to_json().contains("\"slo_breached\":true"));
    assert!(
        report.postmortem.is_some(),
        "an SLO breach must dump the flight recorder"
    );
}

#[test]
fn merged_timeline_validates_and_attributes_every_query() {
    let cfg = base_cfg();
    let report = run(&cfg);
    let timeline = report.timeline.as_ref().expect("run records a timeline");
    let json = snp_trace::chrome::export_chrome_trace(timeline);
    snp_trace::chrome::validate(&json).expect("merged timeline is a valid Chrome trace");
    for qid in 0..cfg.queries as u64 {
        assert!(
            json.contains(&format!("\"query_id\":{qid}")),
            "timeline lost query {qid}"
        );
    }
}

#[test]
fn seeded_device_loss_dump_names_the_failing_query() {
    let mut cfg = base_cfg();
    cfg.fault = Some(FaultSpec {
        profile_name: "loss@2".to_string(),
        profile: snp_faults::FaultProfile {
            device_loss_at: Some(2),
            ..snp_faults::FaultProfile::loss()
        },
        at_query: Some(7),
    });
    let report = run(&cfg);
    let pm = report.postmortem.as_ref().expect("device loss must dump");
    snp_trace::chrome::validate(&pm.json).expect("post-mortem bundle is a valid Chrome trace");
    assert!(pm.reason.contains("query 7"), "{}", pm.reason);
    assert!(
        pm.json.contains("\"query_id\":7"),
        "dump spans must carry the failing query's id"
    );
}
