//! Cross-crate integration test of the tracing layer: run real LD and
//! FastID workloads with a collector attached and assert structural
//! properties of the recorded timeline — span nesting, timestamp order,
//! and (the point of double buffering) transfer/compute overlap.

use snp_bitmat::BitMatrix;
use snp_core::{EngineOptions, ExecMode, GpuEngine};
use snp_gpu_model::devices;
use snp_trace::{TimeDomain, Trace, TraceEvent, Tracer};

fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
    BitMatrix::from_fn(rows, cols, |r, c| {
        let h = (r * 1_000_003 + c + salt * 7_777_777).wrapping_mul(0x9E37_79B9);
        (h >> 13).is_multiple_of(3)
    })
}

/// A small device whose allocation limit forces several B/C chunks, so the
/// double-buffered schedule has something to pipeline.
fn tiny_device() -> snp_gpu_model::DeviceSpec {
    let mut dev = devices::gtx_980();
    dev.name = "GTX tiny".into(); // avoid Table II presets
    dev.max_alloc_bytes = 1 << 17;
    dev.global_mem_bytes = 1 << 20;
    dev
}

fn traced_run(double_buffer: bool) -> Trace {
    let tracer = Tracer::enabled();
    let engine = GpuEngine::new(tiny_device())
        .with_options(EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer,
            ..Default::default()
        })
        .with_tracer(tracer.clone());
    let a = matrix(8, 320, 10);
    let b = matrix(12288, 320, 11);
    engine.identity_search(&a, &b).unwrap();
    tracer.snapshot().expect("tracer is enabled")
}

fn run_span(trace: &Trace) -> &TraceEvent {
    let runs: Vec<&TraceEvent> = trace.events_in_cat("run").collect();
    assert_eq!(runs.len(), 1, "exactly one run span per engine invocation");
    runs[0]
}

#[test]
fn ld_trace_nests_kernels_inside_the_run_span() {
    let tracer = Tracer::enabled();
    let engine = GpuEngine::new(devices::gtx_980()).with_tracer(tracer.clone());
    let panel = matrix(48, 700, 1);
    engine.ld_self(&panel).unwrap();
    let trace = tracer.snapshot().unwrap();

    let run = run_span(&trace);
    let kernels: Vec<&TraceEvent> = trace.events_in_cat("kernel").collect();
    assert!(!kernels.is_empty(), "LD run must launch kernels");
    for k in &kernels {
        assert!(
            k.start_ns >= run.start_ns && k.end_ns <= run.end_ns,
            "kernel span [{}, {}] escapes run span [{}, {}]",
            k.start_ns,
            k.end_ns,
            run.start_ns,
            run.end_ns
        );
    }
    // Transfers and the device-open span nest in the run span too.
    for cat in ["transfer", "init", "pack"] {
        for e in trace.events_in_cat(cat) {
            assert!(
                e.start_ns >= run.start_ns && e.end_ns <= run.end_ns,
                "{cat} span escapes the run span"
            );
        }
    }
}

#[test]
fn fastid_trace_timestamps_are_monotonic_per_track() {
    let trace = traced_run(true);
    // All engine tracks are virtual-time tracks.
    for info in &trace.tracks {
        assert_eq!(info.domain, TimeDomain::Virtual, "track {}", info.name);
    }
    // Within each track, command spans are recorded in non-decreasing start
    // order (in-order queues), and every span is well-formed.
    let n_tracks = trace.tracks.len();
    for t in 0..n_tracks {
        let mut last_start = 0u64;
        for e in trace
            .events
            .iter()
            .filter(|e| e.track.index() as usize == t)
        {
            assert!(e.end_ns >= e.start_ns, "negative-duration span {}", e.name);
            assert!(
                e.start_ns >= last_start,
                "track {t}: span {} starts at {} before previous start {last_start}",
                e.name,
                e.start_ns
            );
            last_start = e.start_ns;
        }
    }
}

#[test]
fn double_buffering_shows_transfer_compute_overlap_and_single_does_not() {
    let db = traced_run(true);
    let sb = traced_run(false);

    let overlaps = |trace: &Trace| -> usize {
        let kernels: Vec<&TraceEvent> = trace.events_in_cat("kernel").collect();
        trace
            .events_in_cat("transfer")
            .filter(|t| kernels.iter().any(|k| t.overlaps(k)))
            .count()
    };

    assert!(
        overlaps(&db) > 0,
        "double-buffered run must show at least one transfer slice overlapping a kernel slice"
    );
    assert_eq!(
        overlaps(&sb),
        0,
        "single-buffered run must serialize transfers against kernels"
    );

    // The overlap is why the double-buffered timeline finishes earlier.
    assert!(run_span(&db).end_ns < run_span(&sb).end_ns);
}
