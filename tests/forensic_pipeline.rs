//! Domain-level pipeline tests: workload generators → engines → forensic /
//! population-genetics conclusions, across the CPU and every simulated GPU.

use snp_repro::bitmat::CompareOp;
use snp_repro::core::GpuEngine;
use snp_repro::cpu::CpuEngine;
use snp_repro::gpu_model::devices;
use snp_repro::popgen::forensic::{
    generate_database, generate_mixtures, generate_queries, DatabaseConfig,
};
use snp_repro::popgen::ld_stats::ld_pair;
use snp_repro::popgen::population::{generate_panel, PanelConfig};
use snp_repro::popgen::FrequencySpectrum;

fn db() -> snp_repro::popgen::Database {
    generate_database(
        &DatabaseConfig {
            profiles: 800,
            snps: 384,
            ..Default::default()
        },
        101,
    )
}

#[test]
fn identity_search_pipeline_on_all_engines() {
    let db = db();
    let queries = generate_queries(&db, 12, 10, 0.015, 7);
    let cpu_gamma = CpuEngine::new().identity_search(&queries.queries, &db.profiles);
    for (q, truth) in queries.truth.iter().enumerate() {
        if let Some(t) = truth {
            assert_eq!(cpu_gamma.argmin_in_row(q), Some(*t), "CPU: query {q}");
        }
    }
    for dev in devices::all_gpus() {
        let run = GpuEngine::new(dev.clone())
            .identity_search(&queries.queries, &db.profiles)
            .unwrap();
        let gamma = run.gamma.unwrap();
        assert_eq!(gamma.first_mismatch(&cpu_gamma), None, "{}", dev.name);
    }
}

#[test]
fn mixture_pipeline_recovers_contributors_and_excludes_most_others() {
    let db = db();
    let (mixtures, matrix) = generate_mixtures(&db, 5, 3, 31);
    let run = GpuEngine::new(devices::vega_64())
        .mixture_analysis(&db.profiles, &matrix)
        .unwrap();
    let gamma = run.gamma.unwrap();
    for (mi, mix) in mixtures.iter().enumerate() {
        for &c in &mix.contributors {
            assert_eq!(
                gamma.get(c, mi),
                0,
                "contributor {c} of mixture {mi} must score 0"
            );
        }
        let included = (0..db.profiles.rows())
            .filter(|&r| gamma.get(r, mi) == 0)
            .count();
        assert!(
            included < db.profiles.rows() / 10,
            "mixture {mi}: {included} profiles included — panel should exclude most"
        );
    }
}

#[test]
fn ld_statistics_identical_from_cpu_and_gpu_gammas() {
    let panel = generate_panel(
        &PanelConfig {
            snps: 96,
            samples: 1500,
            spectrum: FrequencySpectrum::Fixed(0.3),
            block_len: 8,
            within_block_flip: 0.02,
        },
        55,
    );
    let cpu_gamma = CpuEngine::new().ld_self(&panel.matrix);
    let gpu_gamma = GpuEngine::new(devices::titan_v())
        .ld_self(&panel.matrix)
        .unwrap()
        .gamma
        .unwrap();
    assert_eq!(cpu_gamma.first_mismatch(&gpu_gamma), None);
    // Downstream statistics therefore agree exactly.
    let mut strong = 0;
    for a in 0..95 {
        let c = ld_pair(&cpu_gamma, 1500, a, a + 1);
        let g = ld_pair(&gpu_gamma, 1500, a, a + 1);
        assert_eq!(c.r2.to_bits(), g.r2.to_bits());
        if panel.block_of[a] == panel.block_of[a + 1] && c.r2 > 0.5 {
            strong += 1;
        }
    }
    assert!(
        strong > 40,
        "adjacent same-block pairs should mostly be in strong LD, got {strong}"
    );
}

#[test]
fn query_noise_degrades_scores_monotonically() {
    let db = db();
    let clean = generate_queries(&db, 6, 6, 0.0, 9);
    let noisy = generate_queries(&db, 6, 6, 0.05, 9);
    let e = CpuEngine::new();
    let g_clean = e.identity_search(&clean.queries, &db.profiles);
    let g_noisy = e.identity_search(&noisy.queries, &db.profiles);
    for q in 0..6 {
        let t_clean = clean.truth[q].unwrap();
        assert_eq!(
            g_clean.get(q, t_clean),
            0,
            "noiseless planted query matches exactly"
        );
        let t_noisy = noisy.truth[q].unwrap();
        let noisy_score = g_noisy.get(q, t_noisy);
        assert!(noisy_score > 0, "5% noise must perturb the profile");
        // But not enough to lose the match: the planted source still wins.
        assert_eq!(g_noisy.argmin_in_row(q), Some(t_noisy));
    }
}

#[test]
fn xor_and_andnot_are_consistent_through_the_full_stack() {
    // Inclusion–exclusion must survive the full GPU path, not just the
    // reference: |a⊕b| = |a| + |b| − 2|a∧b| and |a∧¬b| = |a| − |a∧b|.
    let db = db();
    let queries = generate_queries(&db, 6, 3, 0.02, 77);
    let dev = devices::gtx_980();
    let engine = GpuEngine::new(dev);
    let and = engine
        .compare(
            &queries.queries,
            &db.profiles,
            snp_repro::core::Algorithm::LinkageDisequilibrium,
        )
        .unwrap()
        .gamma
        .unwrap();
    let xor = engine
        .identity_search(&queries.queries, &db.profiles)
        .unwrap()
        .gamma
        .unwrap();
    let andnot = engine
        .mixture_analysis(&queries.queries, &db.profiles)
        .unwrap()
        .gamma
        .unwrap();
    for q in 0..queries.queries.rows() {
        let pa: u32 = queries.queries.row(q).iter().map(|w| w.count_ones()).sum();
        for p in 0..db.profiles.rows() {
            let pb: u32 = db.profiles.row(p).iter().map(|w| w.count_ones()).sum();
            assert_eq!(xor.get(q, p), pa + pb - 2 * and.get(q, p));
            assert_eq!(andnot.get(q, p), pa - and.get(q, p));
        }
    }
    let _ = CompareOp::ALL; // silence unused-import lint paths on feature changes
}
