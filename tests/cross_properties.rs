//! Property-based cross-engine tests: random problems through the whole
//! stack (reference / CPU BLIS / sparse / simulated GPUs) must agree, and
//! model-level invariants must hold for randomized device parameters.

use proptest::prelude::*;
use snp_repro::bitmat::{reference_gamma, BitMatrix, CompareOp};
use snp_repro::core::{Algorithm, GpuEngine};
use snp_repro::cpu::CpuEngine;
use snp_repro::gpu_model::config::{derive_config, McRule, ProblemShape};
use snp_repro::gpu_model::devices;
use snp_repro::sparse::{sparse_gamma, SparseBitMatrix};

fn bitmat_pair(
    max_rows: usize,
    max_cols: usize,
) -> impl Strategy<Value = (BitMatrix<u64>, BitMatrix<u64>)> {
    (1..=max_rows, 1..=max_rows, 1..=max_cols).prop_flat_map(|(ra, rb, c)| {
        let gen = move |r: usize| {
            prop::collection::vec(prop::collection::vec(any::<bool>(), c), r)
                .prop_map(move |rows| BitMatrix::from_bool_rows(&rows))
        };
        (gen(ra), gen(rb))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reference == CPU BLIS == sparse for arbitrary inputs and operators.
    #[test]
    fn host_engines_agree(
        (a, b) in bitmat_pair(20, 260),
        op_idx in 0usize..3,
    ) {
        let op = CompareOp::ALL[op_idx];
        let want = reference_gamma(&a, &b, op);
        let blis = CpuEngine::new().gamma(&a, &b, op);
        prop_assert_eq!(blis.first_mismatch(&want), None);
        let sp = sparse_gamma(op, &SparseBitMatrix::from_dense(&a), &SparseBitMatrix::from_dense(&b));
        prop_assert_eq!(sp.first_mismatch(&want), None);
    }

    /// The full GPU path agrees with the reference on a random device pick.
    #[test]
    fn gpu_path_agrees(
        (a, b) in bitmat_pair(16, 200),
        dev_idx in 0usize..3,
        alg_idx in 0usize..3,
    ) {
        let dev = devices::all_gpus().swap_remove(dev_idx);
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_idx];
        let op = [CompareOp::And, CompareOp::Xor, CompareOp::AndNot][alg_idx];
        let run = GpuEngine::new(dev).compare(&a, &b, alg).unwrap();
        let want = reference_gamma(&a, &b, op);
        prop_assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
    }

    /// The analytical configuration model produces valid configurations for
    /// randomized plausible hardware.
    #[test]
    fn config_model_valid_for_random_hardware(
        popc_lanes_log in 2u32..6,   // 4..32 lanes
        l_fn in 2u32..9,
        shared_kib in 3u32..9,       // 8..256 KiB via 2^k
        cores in 1u32..97,
        m in 64usize..40_000,
        n in 64usize..40_000,
        k in 1usize..4_000,
    ) {
        let mut dev = devices::gtx_980();
        dev.name = "randomized".into();
        dev.l_fn = l_fn;
        dev.n_cores = cores;
        dev.shared_mem_bytes = (1 << shared_kib) * 1024;
        dev.shared_mem_reserved_bytes = 0;
        for p in &mut dev.pipelines {
            if p.name == "popc" {
                p.lanes = 1 << popc_lanes_log;
            }
        }
        let cfg = derive_config(&dev, ProblemShape { m, n, k_words: k }, McRule::Banks);
        let viol = cfg.violations(&dev);
        prop_assert!(viol.is_empty(), "{:?} for {:?}", viol, cfg);
        prop_assert!(cfg.cores() <= dev.n_cores);
        prop_assert_eq!(cfg.k_c, dev.shared_mem_bytes as usize / (4 * 32));
    }

    /// Memoized tile timing is exactly the unmemoized estimate, and repeat
    /// estimates of the same structure are answered from the cache.
    #[test]
    fn memoized_timing_matches_unmemoized(
        dev_idx in 0usize..3,
        depth in 1usize..32,
        trips in 1u32..5_000,
        groups in 1u32..33,
    ) {
        use snp_repro::gpu_sim::{
            estimate_core_cycles, estimate_core_cycles_memo, timing_cache_stats, Program,
        };
        use snp_repro::gpu_model::InstrClass;
        let dev = devices::all_gpus().swap_remove(dev_idx);
        let prog = Program::dependent_chain(InstrClass::Popc, depth, trips);
        let want = estimate_core_cycles(&dev, &prog, groups);
        let miss = estimate_core_cycles_memo(&dev, &prog, groups);
        let before = timing_cache_stats();
        let hit = estimate_core_cycles_memo(&dev, &prog, groups);
        let after = timing_cache_stats();
        prop_assert_eq!(miss, want);
        prop_assert_eq!(hit, want);
        prop_assert!(after.hits > before.hits, "{:?} -> {:?}", before, after);
    }

    /// Timing monotonicity: more work never takes less modeled time.
    #[test]
    fn end_to_end_monotone_in_problem_size(rows in 16usize..128) {
        use snp_repro::core::{EngineOptions, ExecMode, MixtureStrategy};
        let opts = EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            ..Default::default()
        };
        let dev = devices::titan_v();
        let small = BitMatrix::<u64>::zeros(rows, 4096);
        let large = BitMatrix::<u64>::zeros(rows * 2, 4096);
        let t_small = GpuEngine::new(dev.clone()).with_options(opts).ld_self(&small).unwrap();
        let t_large = GpuEngine::new(dev).with_options(opts).ld_self(&large).unwrap();
        prop_assert!(t_large.timing.end_to_end_ns >= t_small.timing.end_to_end_ns);
    }
}
