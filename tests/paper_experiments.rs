//! Executable assertions of the paper's headline results: each test runs a
//! reduced version of the corresponding bench binary's sweep and checks the
//! reported *shape* (who wins, by what factor, where crossovers fall).
//! EXPERIMENTS.md records the full-size paper-vs-measured numbers.

use snp_repro::bitmat::{BitMatrix, CompareOp};
use snp_repro::core::{
    config_for, Algorithm, CpuModel, EngineOptions, ExecMode, GpuEngine, KernelPlan,
    MixtureStrategy,
};
use snp_repro::gpu_model::config::ProblemShape;
use snp_repro::gpu_model::peak::peak;
use snp_repro::gpu_model::{devices, WordOpKind};

fn timing_only() -> EngineOptions {
    EngineOptions {
        mode: ExecMode::TimingOnly,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        ..Default::default()
    }
}

fn ld_kernel_fraction_of_peak(
    dev: &snp_repro::gpu_model::DeviceSpec,
    snps: usize,
    strings: usize,
) -> f64 {
    let k_words = strings.div_ceil(32);
    let cfg = config_for(
        dev,
        Algorithm::LinkageDisequilibrium,
        ProblemShape {
            m: snps,
            n: snps,
            k_words,
        },
    );
    let plan = KernelPlan::new(dev, &cfg, CompareOp::And, snps, snps, k_words);
    let tput = plan.achieved_word_ops_per_sec(plan.time(dev).total_ns);
    tput / peak(dev, WordOpKind::And).word_ops_per_sec
}

/// Fig. 5: achieved fraction of peak at the maximum tile, per device.
#[test]
fn fig5_achieved_fractions_match_paper() {
    let cases = [
        (devices::gtx_980(), 15_360usize, 12_256usize, 0.907),
        (devices::titan_v(), 25_600, 12_256, 0.971),
        (devices::vega_64(), 40_960, 16_384, 0.549),
    ];
    for (dev, snps, strings, paper) in cases {
        let got = ld_kernel_fraction_of_peak(&dev, snps, strings);
        assert!(
            (got - paper).abs() < 0.02,
            "{}: achieved {got:.3} of peak, paper reports {paper}",
            dev.name
        );
    }
}

/// Fig. 5: throughput grows with the number of SNP strings.
#[test]
fn fig5_throughput_rises_with_strings() {
    for dev in devices::all_gpus() {
        let lo = ld_kernel_fraction_of_peak(&dev, 8_192, 256);
        let hi = ld_kernel_fraction_of_peak(&dev, 8_192, 8_192);
        assert!(
            hi > lo,
            "{}: more strings must mean more reuse ({lo:.3} -> {hi:.3})",
            dev.name
        );
    }
}

/// Fig. 6: end-to-end crossover against the modeled CPU — GPUs lose small,
/// win big, within the paper's 1.47x–7.77x envelope at the top end.
#[test]
fn fig6_crossover_and_speedup_band() {
    let cpu = CpuModel::ivy_bridge_workstation();
    let snps = 10_000usize;
    let speedup = |dev: &snp_repro::gpu_model::DeviceSpec, sequences: usize| -> f64 {
        let panel = BitMatrix::<u64>::zeros(snps, sequences);
        let run = GpuEngine::new(dev.clone())
            .with_options(timing_only())
            .ld_self(&panel)
            .unwrap();
        cpu.time_ns_for_bits(WordOpKind::And, snps, snps, sequences)
            / run.timing.end_to_end_ns as f64
    };
    for dev in devices::all_gpus() {
        assert!(
            speedup(&dev, 1_000) < 1.0,
            "{}: initialization must dominate small problems",
            dev.name
        );
    }
    let titan_max = speedup(&devices::titan_v(), 25_000);
    assert!(
        (5.0..=7.77).contains(&titan_max),
        "Titan V top-end speedup {titan_max:.2} outside the paper's band"
    );
    let gtx_cross = speedup(&devices::gtx_980(), 5_000);
    assert!(
        (1.0..=2.5).contains(&gtx_cross),
        "GTX 980 just past crossover should be modestly faster, got {gtx_cross:.2}"
    );
}

/// Fig. 7: scalability shapes per device.
#[test]
fn fig7_scalability_shapes() {
    let per_core_rel = |dev: &snp_repro::gpu_model::DeviceSpec, cores: u32| -> f64 {
        let k_words = config_for(
            dev,
            Algorithm::LinkageDisequilibrium,
            ProblemShape {
                m: 4096,
                n: 4096,
                k_words: 512,
            },
        )
        .k_c;
        let mut cfg = config_for(
            dev,
            Algorithm::LinkageDisequilibrium,
            ProblemShape {
                m: 32,
                n: cores as usize * 16 * 1024,
                k_words,
            },
        );
        cfg.grid_m = 1;
        cfg.grid_n = cores;
        let n_total = cores as usize * 16 * cfg.n_r;
        let plan = KernelPlan::new(dev, &cfg, CompareOp::And, cfg.m_c, n_total, k_words);
        plan.achieved_word_ops_per_sec(plan.time(dev).total_ns) / cores as f64
    };
    let rel = |dev: &snp_repro::gpu_model::DeviceSpec, cores: u32| {
        per_core_rel(dev, cores) / per_core_rel(dev, 1)
    };
    // Titan V: "scales almost perfectly".
    assert!(rel(&devices::titan_v(), 80) > 0.95);
    // GTX 980: "about 90% efficiency when using all 16 cores".
    let g = rel(&devices::gtx_980(), 16);
    assert!((0.85..=0.95).contains(&g), "GTX 980 at 16 cores: {g:.3}");
    // Vega 64: flat to 8 cores, collapsing beyond.
    let vega = devices::vega_64();
    assert!(rel(&vega, 8) > 0.99);
    assert!(rel(&vega, 16) < 0.90, "the drop must begin past 8 cores");
    let v64 = rel(&vega, 64);
    assert!((0.45..=0.65).contains(&v64), "Vega at 64 cores: {v64:.3}");
}

/// Fig. 8: NDIS-scale FastID finishes in ~seconds; time grows with SNP
/// count; memory-constrained devices need more passes.
#[test]
fn fig8_fastid_shape() {
    let queries = BitMatrix::<u64>::zeros(32, 1024);
    let database = BitMatrix::<u64>::zeros(20_971_520, 1024);
    let mut times = Vec::new();
    for dev in devices::all_gpus() {
        let run = GpuEngine::new(dev.clone())
            .with_options(timing_only())
            .identity_search(&queries, &database)
            .unwrap();
        assert!(
            run.timing.end_to_end_ns < 5_000_000_000,
            "{}: >20M-profile search should take seconds, got {} ns",
            dev.name,
            run.timing.end_to_end_ns
        );
        times.push((dev.name.clone(), run.passes));
    }
    let gtx_passes = times.iter().find(|(n, _)| n == "GTX 980").unwrap().1;
    let titan_passes = times.iter().find(|(n, _)| n == "Titan V").unwrap().1;
    assert!(
        gtx_passes > titan_passes,
        "the 0.983 GiB allocation limit must force more passes on the GTX 980"
    );
    // SNP growth.
    let small = BitMatrix::<u64>::zeros(20_971_520, 128);
    let dev = devices::titan_v();
    let t_small = GpuEngine::new(dev.clone())
        .with_options(timing_only())
        .identity_search(&BitMatrix::<u64>::zeros(32, 128), &small)
        .unwrap()
        .timing
        .end_to_end_ns;
    let t_big = GpuEngine::new(dev)
        .with_options(timing_only())
        .identity_search(&queries, &database)
        .unwrap()
        .timing
        .end_to_end_ns;
    assert!(t_big > t_small, "8x the SNPs must cost more end to end");
}

/// Fig. 9: AND vs AND-NOT on one core.
#[test]
fn fig9_andnot_ratios() {
    for dev in devices::all_gpus() {
        let k = 512usize;
        let mut cfg = config_for(
            &dev,
            Algorithm::MixtureAnalysis,
            ProblemShape {
                m: 32,
                n: 16_384,
                k_words: k,
            },
        );
        cfg.grid_m = 1;
        cfg.grid_n = 1;
        let tput = |op: CompareOp| {
            let plan = KernelPlan::new(&dev, &cfg, op, cfg.m_c, 16 * cfg.n_r, k);
            plan.achieved_word_ops_per_sec(plan.time(&dev).total_ns)
        };
        let ratio = tput(CompareOp::AndNot) / tput(CompareOp::And);
        if dev.fused_andnot {
            assert!(
                (ratio - 1.0).abs() < 1e-9,
                "{}: fused must be free, ratio {ratio}",
                dev.name
            );
        } else {
            assert!(
                (0.6..0.75).contains(&ratio),
                "{}: explicit NOT ratio {ratio:.3}",
                dev.name
            );
        }
    }
}
