//! Timing-engine cross-validation: the macro (analytic) engine must agree
//! with the cycle-stepped detailed engine on the *actual SNP kernel
//! programs* the framework emits — not just on microbenchmark loops. This
//! is the evidence that the analytic numbers behind Figs. 5–9 reflect the
//! modeled microarchitecture rather than an unrelated formula.

use snp_repro::bitmat::CompareOp;
use snp_repro::core::{config_for, group_geometry, tile_program, Algorithm};
use snp_repro::gpu_model::config::ProblemShape;
use snp_repro::gpu_model::devices;
use snp_repro::gpu_sim::{estimate_core_cycles, simulate_core};

fn agreement_for(dev: &snp_repro::gpu_model::DeviceSpec, op: CompareOp, k_words: usize) -> f64 {
    let cfg = config_for(
        dev,
        Algorithm::LinkageDisequilibrium,
        ProblemShape {
            m: 4096,
            n: 4096,
            k_words,
        },
    );
    let prog = tile_program(dev, &cfg, op, k_words);
    let groups = group_geometry(dev, &cfg).groups_per_core;
    let detailed = simulate_core(dev, &prog, groups, 500_000_000)
        .unwrap()
        .cycles as f64;
    let analytic = estimate_core_cycles(dev, &prog, groups);
    (analytic - detailed).abs() / detailed
}

#[test]
fn macro_engine_matches_detailed_on_kernel_programs() {
    for dev in devices::all_gpus() {
        for op in CompareOp::ALL {
            let rel = agreement_for(&dev, op, 64);
            assert!(
                rel < 0.10,
                "{} / {op}: macro vs detailed relative error {rel:.3}",
                dev.name
            );
        }
    }
}

#[test]
fn agreement_improves_with_longer_k() {
    // Prologue/epilogue modeling differences wash out as the k-loop
    // dominates; the steady state must converge tightly.
    let dev = devices::titan_v();
    let short = agreement_for(&dev, CompareOp::And, 16);
    let long = agreement_for(&dev, CompareOp::And, 256);
    assert!(long < 0.05, "steady-state error {long:.3} too large");
    assert!(long <= short + 0.01, "short {short:.3} vs long {long:.3}");
}

#[test]
fn detailed_engine_confirms_fig9_instruction_mix_effect() {
    // The AND vs AND-NOT gap measured by the *detailed* engine (not the
    // analytic path that produced Fig. 9) shows the same mechanism.
    let vega = devices::vega_64();
    let cfg = config_for(
        &vega,
        Algorithm::MixtureAnalysis,
        ProblemShape {
            m: 4096,
            n: 4096,
            k_words: 64,
        },
    );
    let groups = group_geometry(&vega, &cfg).groups_per_core;
    let t_and = simulate_core(
        &vega,
        &tile_program(&vega, &cfg, CompareOp::And, 64),
        groups,
        500_000_000,
    )
    .unwrap()
    .cycles as f64;
    let t_andnot = simulate_core(
        &vega,
        &tile_program(&vega, &cfg, CompareOp::AndNot, 64),
        groups,
        500_000_000,
    )
    .unwrap()
    .cycles as f64;
    let ratio = t_and / t_andnot;
    assert!(
        (0.62..=0.72).contains(&ratio),
        "Vega AND should run ~2/3 the time of AND-NOT, got {ratio:.3}"
    );
    // And the NVIDIA parts must show no gap at all.
    for dev in [devices::gtx_980(), devices::titan_v()] {
        let cfg = config_for(
            &dev,
            Algorithm::MixtureAnalysis,
            ProblemShape {
                m: 4096,
                n: 4096,
                k_words: 64,
            },
        );
        let groups = group_geometry(&dev, &cfg).groups_per_core;
        let a = simulate_core(
            &dev,
            &tile_program(&dev, &cfg, CompareOp::And, 64),
            groups,
            500_000_000,
        )
        .unwrap()
        .cycles;
        let an = simulate_core(
            &dev,
            &tile_program(&dev, &cfg, CompareOp::AndNot, 64),
            groups,
            500_000_000,
        )
        .unwrap()
        .cycles;
        assert_eq!(a, an, "{}: fused AND-NOT must be cycle-identical", dev.name);
    }
}
