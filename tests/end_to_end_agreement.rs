//! Cross-crate agreement: the scalar reference, the BLIS CPU engine, the
//! sparse kernels, and the simulated-GPU framework must produce identical
//! `γ` matrices for every algorithm on every device.

use snp_repro::bitmat::{reference_gamma, CompareOp};
use snp_repro::core::{Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_repro::cpu::CpuEngine;
use snp_repro::gpu_model::devices;
use snp_repro::popgen::{generate_independent, random_dense};
use snp_repro::sparse::{sparse_gamma, SparseBitMatrix};

#[test]
fn four_implementations_agree_on_every_operator() {
    let a = random_dense(60, 900, 11);
    let b = random_dense(90, 900, 12);
    let cpu = CpuEngine::new();
    for op in CompareOp::ALL {
        let reference = reference_gamma(&a, &b, op);
        let blis = cpu.gamma(&a, &b, op);
        assert_eq!(
            blis.first_mismatch(&reference),
            None,
            "CPU BLIS vs reference, op {op}"
        );
        let sparse = sparse_gamma(
            op,
            &SparseBitMatrix::from_dense(&a),
            &SparseBitMatrix::from_dense(&b),
        );
        assert_eq!(
            sparse.first_mismatch(&reference),
            None,
            "sparse vs reference, op {op}"
        );
    }
}

#[test]
fn gpu_framework_agrees_on_every_device_and_algorithm() {
    let a = random_dense(48, 700, 13);
    let b = random_dense(100, 700, 14);
    for dev in devices::all_gpus() {
        let engine = GpuEngine::new(dev.clone());
        for (alg, op) in [
            (Algorithm::LinkageDisequilibrium, CompareOp::And),
            (Algorithm::IdentitySearch, CompareOp::Xor),
            (Algorithm::MixtureAnalysis, CompareOp::AndNot),
        ] {
            let run = engine.compare(&a, &b, alg).unwrap();
            let want = reference_gamma(&a, &b, op);
            assert_eq!(
                run.gamma.unwrap().first_mismatch(&want),
                None,
                "{} / {alg:?}",
                dev.name
            );
        }
    }
}

#[test]
fn gpu_results_identical_across_devices() {
    // Portability: same input, same answer, regardless of the device and
    // its (different) configuration header.
    let panel = generate_independent(80, 1200, 0.25, 15);
    let mut runs = devices::all_gpus()
        .into_iter()
        .map(|d| GpuEngine::new(d).ld_self(&panel).unwrap().gamma.unwrap());
    let first = runs.next().unwrap();
    for other in runs {
        assert_eq!(first.first_mismatch(&other), None);
    }
}

#[test]
fn mixture_strategies_and_engines_agree() {
    let refs = generate_independent(40, 640, 0.3, 16);
    let mixes = generate_independent(12, 640, 0.45, 17);
    let cpu = CpuEngine::new();
    let cpu_direct = cpu.mixture_analysis(&refs, &mixes, false);
    let cpu_pre = cpu.mixture_analysis(&refs, &mixes, true);
    assert_eq!(cpu_direct.first_mismatch(&cpu_pre), None);
    for dev in devices::all_gpus() {
        for strategy in [MixtureStrategy::Direct, MixtureStrategy::PreNegate] {
            let run = GpuEngine::new(dev.clone())
                .with_options(EngineOptions {
                    mode: ExecMode::Full,
                    double_buffer: true,
                    mixture: strategy,
                    ..Default::default()
                })
                .mixture_analysis(&refs, &mixes)
                .unwrap();
            assert_eq!(
                run.gamma.unwrap().first_mismatch(&cpu_direct),
                None,
                "{} {strategy:?}",
                dev.name
            );
        }
    }
}

#[test]
fn cpu_and_gpu_agree_on_padded_awkward_shapes() {
    // Shapes that hit every edge path: non-multiple rows, ragged words.
    let cpu = CpuEngine::new();
    let dev = devices::gtx_980();
    for (m, n, bits) in [
        (1usize, 1usize, 65usize),
        (33, 7, 127),
        (5, 129, 64),
        (17, 31, 1000),
    ] {
        let a = random_dense(m, bits, (m * n) as u64);
        let b = random_dense(n, bits, (m + n) as u64);
        let want = cpu.gamma(&a, &b, CompareOp::Xor);
        let run = GpuEngine::new(dev.clone()).identity_search(&a, &b).unwrap();
        assert_eq!(
            run.gamma.unwrap().first_mismatch(&want),
            None,
            "shape {m}x{n}x{bits}"
        );
    }
}
