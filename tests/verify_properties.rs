//! Property tests for the static verifier: pipelines with randomly dropped
//! ordering edges must be flagged (one RAW hazard per dropped edge), the
//! repaired pipeline must verify clean, and the engine's seeded-fault hook
//! must turn into a `SimError::Hazard` at every problem scale.

use proptest::prelude::*;
use snp_repro::core::{Algorithm, EngineOptions, ExecMode, GpuEngine, MixtureStrategy};
use snp_repro::gpu_model::config::ProblemShape;
use snp_repro::gpu_model::devices;
use snp_repro::gpu_sim::macro_engine::Traffic;
use snp_repro::gpu_sim::{Gpu, KernelCost, SimError};
use snp_repro::verify::{verify_command_log, Report, Severity};

fn cost() -> KernelCost {
    KernelCost::Analytic {
        core_cycles: 50_000.0,
        active_cores: 4,
        traffic: Traffic::default(),
    }
}

/// Builds the canonical transfer/compute pipeline: per stage `i`, a write of
/// `b_i` on the transfer queue, a kernel reading `b_i` and writing `c_i` on
/// the compute queue, and a readback of `c_i` on the transfer queue. The
/// kernel's wait on the write is dropped exactly where `drop_edge[i]` says.
fn build_pipeline(g: &Gpu, drop_edge: &[bool]) {
    let q_xfer = g.create_queue();
    let q_comp = g.create_queue();
    for &dropped in drop_edge {
        let b = g.create_virtual_buffer(256).unwrap();
        let c = g.create_virtual_buffer(256).unwrap();
        let ev_w = g.enqueue_virtual_write(q_xfer, b, 0, 256, &[]).unwrap();
        let deps: Vec<_> = if dropped { vec![] } else { vec![ev_w] };
        let ev_k = g
            .enqueue_kernel_timed_on(q_comp, &cost(), &[b], c, &deps)
            .unwrap();
        let ev_r = g.enqueue_virtual_read(q_xfer, c, 0, 256, &[ev_k]).unwrap();
        let _ = g.event_profile(ev_r).unwrap();
        if dropped {
            // Keep the orphaned write out of the dead-event lint so the
            // only finding attributable to the drop is the RAW hazard.
            let _ = g.event_profile(ev_w).unwrap();
        }
    }
}

fn severity_count(report: &Report, sev: Severity) -> usize {
    report.count(sev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every dropped write→kernel edge is caught as exactly one RAW hazard,
    /// and nothing else in the pipeline is flagged as an error.
    #[test]
    fn dropped_edges_are_each_flagged_as_raw(
        drop_edge in prop::collection::vec(any::<bool>(), 1..12),
        dev_idx in 0usize..3,
    ) {
        let g = Gpu::new(devices::all_gpus().swap_remove(dev_idx));
        build_pipeline(&g, &drop_edge);
        let report = verify_command_log(&g.command_log());
        let dropped = drop_edge.iter().filter(|&&d| d).count();
        prop_assert_eq!(
            report.with_code("V001-RAW").count(),
            dropped,
            "one RAW per dropped edge in {}",
            report.render_text("pipeline")
        );
        prop_assert_eq!(severity_count(&report, Severity::Error), dropped);
    }

    /// The repaired stream — same shape, every edge restored — is clean:
    /// no errors, no warnings (infos such as overlap stats are fine).
    #[test]
    fn repaired_pipeline_verifies_clean(stages in 1usize..12, dev_idx in 0usize..3) {
        let g = Gpu::new(devices::all_gpus().swap_remove(dev_idx));
        build_pipeline(&g, &vec![false; stages]);
        let report = verify_command_log(&g.command_log());
        prop_assert!(
            !report.has_blocking(),
            "clean pipeline must not block: {}",
            report.render_text("pipeline")
        );
    }

    /// Engine-level mutation: the seeded fault (kernel's wait on its B-tile
    /// upload dropped) always surfaces as a `SimError::Hazard`, across
    /// single- and multi-chunk plans; the unfaulted engine always passes.
    #[test]
    fn seeded_engine_fault_is_always_caught(
        n_chunks in 1usize..5,
        alg_idx in 0usize..3,
    ) {
        let mut dev = devices::gtx_980();
        dev.name = "GTX tiny".into();
        dev.max_alloc_bytes = 1 << 17;
        dev.global_mem_bytes = 1 << 20;
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_idx];
        let shape = ProblemShape { m: 8, n: n_chunks * 3072, k_words: 10 };
        let options = EngineOptions {
            mode: ExecMode::TimingOnly,
            double_buffer: true,
            mixture: MixtureStrategy::Direct,
            verify: true,
            ..Default::default()
        };
        let clean = GpuEngine::new(dev.clone())
            .with_options(options)
            .run_shape(shape, alg)
            .unwrap();
        let report = clean.verify_report.expect("verification was on");
        prop_assert!(!report.has_blocking(), "{}", report.render_text("engine"));

        let faulted = GpuEngine::new(dev)
            .with_options(options)
            .with_fault_plan(snp_repro::core::FaultPlan::new(
                0,
                snp_repro::core::FaultProfile {
                    drop_kernel_b_dep: true,
                    ..snp_repro::core::FaultProfile::none()
                },
            ))
            .run_shape(shape, alg);
        match faulted {
            Err(snp_repro::core::EngineError::Device(SimError::Hazard(text))) => {
                prop_assert!(text.contains("V001-RAW"), "unexpected hazard: {text}");
            }
            other => prop_assert!(false, "expected a hazard, got {other:?}"),
        }
    }
}
