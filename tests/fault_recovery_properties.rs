//! Fault-injection/recovery properties (DESIGN.md §10): for ANY seeded
//! fault plan the engine either returns results bit-identical to the
//! fault-free oracle or a typed `DeviceFault` error — never silently
//! corrupted data — and the recovery counters reconcile exactly with the
//! number of injected faults. Deterministic companions pin down the
//! checkpoint-resume guarantee (device loss resumes from the last verified
//! chunk, not from chunk zero) and multi-device failover.

use proptest::prelude::*;
use snp_repro::bitmat::{reference_gamma, BitMatrix, CompareOp};
use snp_repro::core::{
    dgx2_like, Algorithm, EngineOptions, ExecMode, FaultKind, FaultPlan, FaultProfile, GpuEngine,
    MixtureStrategy, MultiGpuEngine, RecoveryPolicy,
};
use snp_repro::gpu_model::{devices, DeviceSpec};

fn matrix(rows: usize, cols: usize, salt: usize) -> BitMatrix<u64> {
    BitMatrix::from_fn(rows, cols, |r, c| {
        let h = (r * 1_000_003 + c + salt * 7_777_777).wrapping_mul(0x9E37_79B9);
        (h >> 13).is_multiple_of(4)
    })
}

/// A memory-shrunk device so a few-thousand-row database needs several
/// passes — checkpointing and loss-resume are only meaningful multi-chunk.
fn tiny_device() -> DeviceSpec {
    let mut d = devices::gtx_980();
    d.name = "GTX tiny".into();
    d.max_alloc_bytes = 1 << 17;
    d.global_mem_bytes = 1 << 20;
    d
}

fn full_options() -> EngineOptions {
    EngineOptions {
        mode: ExecMode::Full,
        double_buffer: true,
        mixture: MixtureStrategy::Direct,
        verify: true,
        recovery: RecoveryPolicy::default(),
        profile: false,
        cost_scale: snp_core::CostScale::default(),
    }
}

/// Fault-free oracle for the same problem.
fn oracle(
    a: &BitMatrix<u64>,
    b: &BitMatrix<u64>,
    alg: Algorithm,
) -> snp_repro::bitmat::CountMatrix {
    GpuEngine::new(tiny_device())
        .with_options(full_options())
        .compare(a, b, alg)
        .expect("fault-free run")
        .gamma
        .expect("full mode")
}

#[test]
fn transient_faults_recover_bit_identical() {
    let a = matrix(8, 320, 1);
    let b = matrix(9000, 320, 2);
    let want = oracle(&a, &b, Algorithm::IdentitySearch);
    let run = GpuEngine::new(tiny_device())
        .with_options(full_options())
        .with_fault_plan(FaultPlan::new(42, FaultProfile::transient()))
        .compare(&a, &b, Algorithm::IdentitySearch)
        .expect("transient faults must be retried to success");
    assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
    let rec = run.recovery.expect("recovering path taken");
    assert!(
        rec.retries > 0,
        "seed 42 must inject at least one transient"
    );
    assert_eq!(rec.retries_timeout, rec.injected.transfer_timeouts);
    assert_eq!(rec.retries_launch, rec.injected.kernel_launch_fails);
    assert!(!rec.device_lost);
    assert!(run.timing.recovery_ns > 0, "backoff must be charged");
}

#[test]
fn corruption_is_detected_and_reread() {
    let a = matrix(8, 320, 3);
    let b = matrix(9000, 320, 4);
    let want = oracle(&a, &b, Algorithm::IdentitySearch);
    // Find a seed that actually corrupts a readback (deterministic scan).
    let mut hit = false;
    for seed in 0..20u64 {
        let run = GpuEngine::new(tiny_device())
            .with_options(full_options())
            .with_fault_plan(FaultPlan::new(seed, FaultProfile::corruption()))
            .compare(&a, &b, Algorithm::IdentitySearch)
            .expect("corruption must be detected and recovered");
        assert_eq!(
            run.gamma.unwrap().first_mismatch(&want),
            None,
            "seed {seed}: checksum verification let corrupted data through"
        );
        let rec = run.recovery.unwrap();
        assert_eq!(rec.corruption_detected, rec.injected.read_corruptions);
        hit |= rec.corruption_detected > 0;
    }
    assert!(hit, "no seed in 0..20 injected a corruption at 15% rate");
}

#[test]
fn stalls_are_absorbed_without_retry() {
    let a = matrix(8, 320, 5);
    let b = matrix(9000, 320, 6);
    let want = oracle(&a, &b, Algorithm::IdentitySearch);
    let run = GpuEngine::new(tiny_device())
        .with_options(full_options())
        .with_fault_plan(FaultPlan::new(7, FaultProfile::stall()))
        .compare(&a, &b, Algorithm::IdentitySearch)
        .expect("stalls never fail a run");
    assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
    let rec = run.recovery.unwrap();
    assert!(rec.injected.queue_stalls > 0, "seed 7 must stall something");
    assert_eq!(rec.stalls_absorbed, rec.injected.queue_stalls);
    assert_eq!(rec.retries, 0, "stalls must not trigger retries");
}

#[test]
fn device_loss_resumes_from_checkpoint_not_chunk_zero() {
    let a = matrix(8, 320, 7);
    let b = matrix(9000, 320, 8);
    let want = oracle(&a, &b, Algorithm::IdentitySearch);
    // Kill the device mid-stream: late enough that at least one chunk has
    // been checkpointed, early enough that work remains.
    let profile = FaultProfile {
        device_loss_at: Some(12),
        ..FaultProfile::none()
    };
    let run = GpuEngine::new(tiny_device())
        .with_options(full_options())
        .with_fault_plan(FaultPlan::new(0, profile))
        .compare(&a, &b, Algorithm::IdentitySearch)
        .expect("loss with CPU fallback must complete degraded");
    assert_eq!(run.gamma.unwrap().first_mismatch(&want), None);
    let rec = run.recovery.unwrap();
    assert!(rec.device_lost && rec.degraded());
    let resumed = rec.resumed_from_chunk.expect("loss records resume point");
    assert!(
        resumed >= 1,
        "loss at command 12 must land after the first checkpoint, got chunk {resumed}"
    );
    assert_eq!(
        rec.verified_chunks, resumed,
        "every chunk before the resume point was checkpointed"
    );
    assert_eq!(
        rec.cpu_fallback_chunks,
        rec.total_chunks - resumed,
        "exactly the unverified suffix reruns on the CPU"
    );
}

#[test]
fn device_loss_without_fallback_is_a_typed_error_with_source_chain() {
    let a = matrix(8, 320, 9);
    let b = matrix(9000, 320, 10);
    let mut opts = full_options();
    opts.recovery.cpu_fallback = false;
    let err = GpuEngine::new(tiny_device())
        .with_options(opts)
        .with_fault_plan(FaultPlan::new(
            0,
            FaultProfile {
                device_loss_at: Some(3),
                ..FaultProfile::none()
            },
        ))
        .compare(&a, &b, Algorithm::IdentitySearch)
        .expect_err("loss without fallback must surface");
    let fault = err.device_fault().expect("typed DeviceFault");
    assert_eq!(fault.kind, FaultKind::DeviceLoss);
    // The full source chain: EngineError -> SimError -> DeviceFault.
    use std::error::Error;
    let sim = err.source().expect("EngineError::source");
    let leaf = sim.source().expect("SimError::source");
    assert!(leaf.to_string().contains("device_loss"), "{leaf}");
}

#[test]
fn multi_device_failover_reshards_onto_survivors() {
    let a = matrix(8, 320, 11);
    let b = matrix(300, 320, 12);
    let want = reference_gamma(&a, &b, CompareOp::Xor);
    let lossy = FaultPlan::new(
        0,
        FaultProfile {
            device_loss_at: Some(3),
            ..FaultProfile::none()
        },
    );
    let multi = MultiGpuEngine::new(vec![devices::titan_v(), devices::titan_v()])
        .with_options(full_options())
        .with_device_faults(vec![Some(lossy), None])
        .identity_search(&a, &b)
        .expect("survivor absorbs the lost shard");
    assert_eq!(multi.gamma.unwrap().first_mismatch(&want), None);
    assert_eq!(multi.lost_devices, vec![0]);
    assert_eq!(
        multi.failover_rows, multi.shard_rows[0],
        "the whole lost shard fails over"
    );
}

#[test]
fn all_devices_lost_falls_back_to_cpu() {
    let a = matrix(8, 320, 13);
    let b = matrix(200, 320, 14);
    let want = reference_gamma(&a, &b, CompareOp::Xor);
    let lossy = || {
        Some(FaultPlan::new(
            0,
            FaultProfile {
                device_loss_at: Some(3),
                ..FaultProfile::none()
            },
        ))
    };
    let multi = MultiGpuEngine::new(vec![devices::titan_v(), devices::titan_v()])
        .with_options(full_options())
        .with_device_faults(vec![lossy(), lossy()])
        .identity_search(&a, &b)
        .expect("CPU engine is the last resort");
    assert_eq!(multi.gamma.unwrap().first_mismatch(&want), None);
    assert_eq!(multi.lost_devices, vec![0, 1]);
    assert_eq!(multi.failover_rows, b.rows());
}

#[test]
fn streaming_topk_recovers_to_oracle_lists() {
    let q = matrix(4, 320, 15);
    let db = matrix(1200, 320, 16);
    let clean = GpuEngine::new(tiny_device())
        .with_options(full_options())
        .identity_search_topk(&q, &db, 5)
        .unwrap()
        .matches
        .unwrap();
    for profile in [FaultProfile::transient(), FaultProfile::mixed()] {
        let run = GpuEngine::new(tiny_device())
            .with_options(full_options())
            .with_fault_plan(FaultPlan::new(9, profile))
            .identity_search_topk(&q, &db, 5)
            .expect("recovering top-k must complete");
        assert_eq!(run.matches.unwrap(), clean, "top-k lists diverged");
        assert!(run.recovery.is_some());
    }
}

#[test]
fn dgx2_sized_group_survives_one_loss() {
    let a = matrix(4, 256, 17);
    let b = matrix(640, 256, 18);
    let want = reference_gamma(&a, &b, CompareOp::Xor);
    let mut plans: Vec<Option<FaultPlan>> = vec![None; 16];
    plans[5] = Some(FaultPlan::new(
        0,
        FaultProfile {
            device_loss_at: Some(2),
            ..FaultProfile::none()
        },
    ));
    let multi = MultiGpuEngine::new(dgx2_like())
        .with_options(full_options())
        .with_device_faults(plans)
        .identity_search(&a, &b)
        .expect("15 survivors absorb one lost shard");
    assert_eq!(multi.gamma.unwrap().first_mismatch(&want), None);
    assert_eq!(multi.lost_devices, vec![5]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// THE tentpole property: any seeded plan, any profile, any algorithm —
    /// the engine returns bit-identical results or a typed fault. Silent
    /// corruption is unrepresentable.
    #[test]
    fn seeded_plans_never_silently_corrupt(
        seed in any::<u64>(),
        profile_idx in 0usize..5,
        alg_idx in 0usize..3,
    ) {
        let profile = [
            FaultProfile::transient(),
            FaultProfile::corruption(),
            FaultProfile::stall(),
            FaultProfile::loss(),
            FaultProfile::mixed(),
        ][profile_idx];
        let alg = [
            Algorithm::LinkageDisequilibrium,
            Algorithm::IdentitySearch,
            Algorithm::MixtureAnalysis,
        ][alg_idx];
        let a = matrix(6, 256, 19);
        let b = matrix(900, 256, 20);
        let want = oracle(&a, &b, alg);
        let run = GpuEngine::new(tiny_device())
            .with_options(full_options())
            .with_fault_plan(FaultPlan::new(seed, profile))
            .compare(&a, &b, alg);
        match run {
            Ok(report) => {
                prop_assert_eq!(
                    report.gamma.unwrap().first_mismatch(&want),
                    None,
                    "silent corruption at seed {}",
                    seed
                );
                let rec = report.recovery.expect("recovering path");
                // Counter reconciliation: every injected fault is accounted.
                prop_assert_eq!(rec.retries_timeout, rec.injected.transfer_timeouts);
                prop_assert_eq!(rec.retries_launch, rec.injected.kernel_launch_fails);
                prop_assert_eq!(rec.corruption_detected, rec.injected.read_corruptions);
                prop_assert_eq!(rec.stalls_absorbed, rec.injected.queue_stalls);
                prop_assert_eq!(rec.retries, rec.retries_timeout + rec.retries_launch);
                prop_assert_eq!(rec.device_lost, rec.injected.device_losses > 0);
            }
            Err(e) => {
                prop_assert!(
                    e.device_fault().is_some(),
                    "non-typed failure at seed {}: {}", seed, e
                );
            }
        }
    }

    /// Timing stays internally consistent under fault recovery: the phase
    /// sums (including `recovery_ns`) must still bracket end-to-end time.
    #[test]
    fn recovered_timing_validates(seed in any::<u64>()) {
        let a = matrix(6, 256, 21);
        let b = matrix(900, 256, 22);
        let run = GpuEngine::new(tiny_device())
            .with_options(full_options())
            .with_fault_plan(FaultPlan::new(seed, FaultProfile::mixed()))
            .compare(&a, &b, Algorithm::IdentitySearch);
        if let Ok(report) = run {
            prop_assert!(report.timing.validate().is_ok(), "{:?}", report.timing.validate());
        }
    }
}
