//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal, deterministic implementation of the subset
//! of the `rand` 0.10 API it actually uses: [`Rng`]/[`RngExt`],
//! [`SeedableRng`], [`rngs::StdRng`], `random`, `random_bool` and
//! `random_range`. The generator is xoshiro256** seeded through SplitMix64,
//! so streams are high-quality and fully reproducible from a `u64` seed —
//! which is all the synthetic-workload generators in `snp-popgen` need.
//! Swapping the real crate back in requires only a `Cargo.toml` change.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words (rand's `RngCore` role; kept under the
/// name the workspace's generic bounds use).
pub trait Rng {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// The convenience sampling methods (`random`, `random_bool`,
/// `random_range`), blanket-implemented for every [`Rng`] as in rand 0.10's
/// extension-trait layering.
pub trait RngExt: Rng {
    /// Samples a uniform value of type `T` (see [`Random`] for the
    /// per-type distributions).
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A Bernoulli draw: `true` with probability `p`. Panics if `p` is not
    /// in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::random(self) < p
    }

    /// Samples uniformly from a range (half-open or inclusive; integer or
    /// floating point). Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types that can be drawn uniformly from an [`Rng`].
pub trait Random {
    /// Draws one value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[inline]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline]
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce(rng.next_u64(), span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::random(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    #[inline]
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::random(rng) * (hi - lo)
    }
}

/// Maps a uniform `u64` onto `0..span` with negligible bias (Lemire's
/// multiply-shift reduction).
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into four non-zero words.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256** (Blackman & Vigna).
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng as DefaultRng;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = r.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.random_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&w));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(11);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
        let heads = (0..10_000).filter(|_| r.random_bool(0.3)).count();
        assert!((2_500..3_500).contains(&heads), "got {heads}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(1);
        let _ = r.random_range(5usize..5);
    }
}
