//! Offline stand-in for the `rayon` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this crate
//! provides the small slice of rayon's API the workspace uses —
//! `par_chunks_mut(..).enumerate().for_each(..)`, `par_iter` over slices,
//! `into_par_iter` over ranges, and [`current_num_threads`] — implemented
//! with `std::thread::scope` worker pools. Work items are distributed
//! dynamically (an atomic cursor over the item list), so uneven chunk costs
//! balance across threads just as with rayon's work stealing, only at chunk
//! granularity. Panics inside tasks propagate to the caller, matching rayon.
//!
//! Swapping the real crate back in requires only a `Cargo.toml` change.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Everything a `use rayon::prelude::*` caller expects.
pub mod prelude {
    pub use crate::{IntoParallelIterator, ParallelIterator, ParallelSlice, ParallelSliceMut};
}

/// Number of worker threads a parallel operation may use (the machine's
/// available parallelism; rayon's global-pool equivalent).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Runs `items` through `f` on up to [`current_num_threads`] scoped worker
/// threads. Items are handed out through a shared cursor, so the assignment
/// of items to threads is dynamic; `f` must therefore be safe to call
/// concurrently from several threads.
fn run_parallel<T: Send, F: Fn(T) + Sync>(items: Vec<T>, f: F) {
    let threads = current_num_threads().min(items.len());
    if threads <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let queue: Vec<Mutex<Option<T>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let cursor = AtomicUsize::new(0);
    let f = &f;
    let queue = &queue;
    let cursor = &cursor;
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(move || loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= queue.len() {
                    break;
                }
                let item = queue[idx]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .take()
                    .expect("each slot is taken exactly once");
                f(item);
            });
        }
    });
}

/// A finite, already-materialized parallel iterator (all adaptors collect
/// into item lists before running — fine at the chunk/tile granularity this
/// workspace parallelizes at).
pub struct ParIter<T: Send> {
    items: Vec<T>,
}

/// Operations on parallel iterators.
pub trait ParallelIterator: Sized {
    /// The element type.
    type Item: Send;

    /// Consumes the iterator into its item list.
    fn into_items(self) -> Vec<Self::Item>;

    /// Pairs every item with its index.
    fn enumerate(self) -> ParIter<(usize, Self::Item)> {
        ParIter {
            items: self.into_items().into_iter().enumerate().collect(),
        }
    }

    /// Applies `f` to every item on the worker pool.
    fn for_each<F: Fn(Self::Item) + Sync + Send>(self, f: F) {
        run_parallel(self.into_items(), f);
    }

    /// Maps every item on the worker pool, preserving order.
    fn map<U: Send, F: Fn(Self::Item) -> U + Sync + Send>(self, f: F) -> ParIter<U> {
        let items = self.into_items();
        let mut out: Vec<Option<U>> = (0..items.len()).map(|_| None).collect();
        {
            let tasks: Vec<(usize, Self::Item)> = items.into_iter().enumerate().collect();
            let out_cells: Vec<Mutex<&mut Option<U>>> = out.iter_mut().map(Mutex::new).collect();
            let out_cells = &out_cells;
            let f = &f;
            run_parallel(tasks, move |(i, item)| {
                **out_cells[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(f(item));
            });
        }
        ParIter {
            items: out.into_iter().map(|v| v.expect("mapped")).collect(),
        }
    }

    /// Collects the items (ordered).
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        self.into_items().into_iter().collect()
    }
}

impl<T: Send> ParallelIterator for ParIter<T> {
    type Item = T;
    fn into_items(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into a parallel iterator (`into_par_iter`).
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The resulting iterator.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = ParIter<usize>;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// `par_chunks` / `par_iter` over shared slices.
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `chunk`-sized pieces of the slice.
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]>;
    /// Parallel iterator over the elements.
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk: usize) -> ParIter<&[T]> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks(chunk).collect(),
        }
    }
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over disjoint `chunk`-sized mutable pieces.
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk: usize) -> ParIter<&mut [T]> {
        assert!(chunk > 0, "chunk size must be positive");
        ParIter {
            items: self.chunks_mut(chunk).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn chunks_mut_visits_every_chunk_once() {
        let mut data = vec![0u32; 1003];
        data.par_chunks_mut(100).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v += i as u32 + 1;
            }
        });
        // Chunk i gets value i+1; 11 chunks, last of size 3.
        assert_eq!(data[0], 1);
        assert_eq!(data[999], 10);
        assert_eq!(data[1000..], [11, 11, 11]);
    }

    #[test]
    fn for_each_runs_all_tasks() {
        let hits = AtomicUsize::new(0);
        (0..257usize).into_par_iter().for_each(|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 257);
    }

    #[test]
    fn map_preserves_order() {
        let out: Vec<usize> = (0..100usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn task_panics_propagate() {
        (0..8usize).into_par_iter().for_each(|i| {
            if i == 5 {
                panic!("boom");
            }
        });
    }
}
