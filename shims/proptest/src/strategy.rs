//! The [`Strategy`] trait and the combinators/primitive strategies the
//! workspace's property tests use.

use crate::test_runner::TestRng;
use rand::{Rng, RngExt};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG state.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms every generated value with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Feeds every generated value into `f` to obtain a dependent strategy,
    /// then draws from that.
    fn prop_flat_map<U: Strategy, F: Fn(Self::Value) -> U>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Strategy, F: Fn(S::Value) -> U> Strategy for FlatMap<S, F> {
    type Value = U::Value;
    fn generate(&self, rng: &mut TestRng) -> U::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical "any value" strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.random()
    }
}

/// Strategy for an [`Arbitrary`] type.
#[derive(Clone)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// The canonical strategy for `T`: uniform over the full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}
