//! Deterministic case runner: per-test RNG seeding, [`ProptestConfig`], and
//! the `proptest!` / `prop_assert*` macros.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How many random cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG handed to strategies. Seeded from the fully-qualified test name
/// and case index, so every case is reproducible without recording seeds.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn deterministic(name: &str, case: u32) -> Self {
        // FNV-1a over the name, mixed with the case index; StdRng's
        // SplitMix64 seeding scrambles the result further.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h ^ ((case as u64) << 32 | case as u64)),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Defines deterministic property tests.
///
/// Supported grammar (the subset of real proptest this workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]   // optional
///
///     /// docs and attributes pass through
///     #[test]
///     fn name(pattern in strategy_expr, x in 0usize..10) { ...body... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)+) => { assert!($($args)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)+) => { assert_eq!($($args)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)+) => { assert_ne!($($args)+) };
}
