//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this crate
//! implements the subset of proptest this workspace's property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`, range and tuple
//! strategies, `any::<T>()`, `prop::collection::vec`, [`ProptestConfig`],
//! and the `proptest!`/`prop_assert!`/`prop_assert_eq!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case panics with the assertion message as-is.
//! - **Deterministic seeding.** Case `i` of test `t` draws from an RNG seeded
//!   by `hash(t) ^ i`, so failures reproduce exactly on re-run — which
//!   replaces shrinking's role of making failures actionable.
//!
//! Swapping the real crate back in requires only a `Cargo.toml` change.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::RngExt;

    /// Size specifications accepted by [`vec`]: an exact length or a range.
    pub trait SizeRange: Clone {
        /// Picks a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for std::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for std::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy producing `Vec`s of values drawn from `elem`.
    #[derive(Clone)]
    pub struct VecStrategy<S, Z> {
        elem: S,
        size: Z,
    }

    /// Generates vectors whose elements come from `elem` and whose length
    /// comes from `size` (a `usize` or a range of `usize`).
    pub fn vec<S: Strategy, Z: SizeRange>(elem: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The usual `use proptest::prelude::*` surface.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair(max: usize) -> impl Strategy<Value = (usize, Vec<bool>)> {
        (1..=max)
            .prop_flat_map(|n| prop::collection::vec(any::<bool>(), n).prop_map(move |v| (n, v)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Generated lengths respect the strategy bounds.
        #[test]
        fn vec_lengths_in_range((n, v) in pair(17)) {
            prop_assert!((1..=17).contains(&n));
            prop_assert_eq!(v.len(), n);
        }

        /// Multiple parameters and format args both work.
        #[test]
        fn multi_param(a in 0usize..10, b in 5u32..6, flag in any::<bool>()) {
            prop_assert!(a < 10, "a was {}", a);
            prop_assert_eq!(b, 5);
            prop_assert_ne!(flag as u32, 2);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = crate::collection::vec(0u64..1_000_000, 8usize);
        let a = strat.generate(&mut TestRng::deterministic("x", 3));
        let b = strat.generate(&mut TestRng::deterministic("x", 3));
        let c = strat.generate(&mut TestRng::deterministic("x", 4));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
