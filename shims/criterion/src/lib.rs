//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot fetch crates.io dependencies, so this crate
//! implements the subset of the criterion 0.8 API the workspace's benches
//! use: `Criterion::benchmark_group`, `BenchmarkGroup` with
//! `sample_size`/`throughput`/`bench_function`/`bench_with_input`/`finish`,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark is auto-calibrated (iteration count
//! doubles until a sample takes long enough to time reliably), then
//! `sample_size` samples are taken and the **median** ns/iter is reported,
//! with derived element/byte throughput when the group declares one.
//! There is no statistical comparison against saved baselines; for
//! old-vs-new comparisons this workspace benches both variants side by side
//! in the same run. Set `CRITERION_SHIM_JSON=/path/file.json` to also append
//! one JSON object per benchmark to that file for snapshotting.
//!
//! Swapping the real crate back in requires only a `Cargo.toml` change.

#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Minimum wall-clock time a calibration batch must take before its timing
/// is trusted to extrapolate an iteration count.
const CALIBRATION_FLOOR: Duration = Duration::from_millis(4);

/// Wall-clock target for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(25);

/// Top-level benchmark driver (shim: holds only the optional JSON sink).
pub struct Criterion {
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            json_path: std::env::var("CRITERION_SHIM_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
            throughput: None,
        }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<BenchmarkId>, mut f: F) {
        let mut g = self.benchmark_group("");
        g.bench_function(id, &mut f);
        g.finish();
    }
}

/// Work-per-iteration declaration used to derive throughput numbers.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus optional parameter string.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            full: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter (for groups benching one function
    /// across inputs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            full: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { full: s }
    }
}

/// A group of benchmarks sharing a name prefix, sample size, and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets how many samples each benchmark in the group records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benches a closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: None,
        };
        f(&mut bencher);
        self.report(id.into(), bencher.median_ns);
        self
    }

    /// Benches a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            median_ns: None,
        };
        f(&mut bencher, input);
        self.report(id.into(), bencher.median_ns);
        self
    }

    /// Ends the group (kept for API compatibility; reporting is per-bench).
    pub fn finish(self) {}

    fn report(&mut self, id: BenchmarkId, median_ns: Option<f64>) {
        let full_id = if self.name.is_empty() {
            id.full.clone()
        } else {
            format!("{}/{}", self.name, id.full)
        };
        let Some(ns) = median_ns else {
            println!("{full_id:<50} (no measurement: Bencher::iter never called)");
            return;
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Elements(n) => (n as f64 / (ns * 1e-9), "elem/s"),
            Throughput::Bytes(n) => (n as f64 / (ns * 1e-9), "B/s"),
        });
        match rate {
            Some((r, unit)) => {
                println!(
                    "{full_id:<50} {:>14} ns/iter {:>14} {unit}",
                    fmt_num(ns),
                    fmt_num(r)
                )
            }
            None => println!("{full_id:<50} {:>14} ns/iter", fmt_num(ns)),
        }
        if let Some(path) = &self.criterion.json_path {
            let (tp, tp_unit) = match rate {
                Some((r, unit)) => (r, unit),
                None => (0.0, ""),
            };
            let line = format!(
                "{{\"id\":\"{}\",\"ns_per_iter\":{:.3},\"throughput\":{:.3},\"throughput_unit\":\"{}\"}}\n",
                full_id, ns, tp, tp_unit
            );
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = f.write_all(line.as_bytes());
            }
        }
    }
}

fn fmt_num(x: f64) -> String {
    if x >= 1e9 {
        format!("{:.3}e9", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.2}k", x / 1e3)
    } else {
        format!("{x:.2}")
    }
}

/// Handed to benchmark closures; [`Bencher::iter`] measures the routine.
pub struct Bencher {
    sample_size: usize,
    median_ns: Option<f64>,
}

impl Bencher {
    /// Measures `routine`: calibrates an iteration count, records
    /// `sample_size` samples, and stores the median ns/iter.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the batch until it takes long enough to time.
        let mut iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = start.elapsed();
            if dt >= CALIBRATION_FLOOR || iters >= 1 << 24 {
                break (dt.as_nanos().max(1) as f64) / iters as f64;
            }
            iters = iters.saturating_mul(4);
        };

        let sample_iters =
            ((SAMPLE_TARGET.as_nanos() as f64 / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..sample_iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / sample_iters as f64);
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mid = samples.len() / 2;
        let median = if samples.len().is_multiple_of(2) {
            (samples[mid - 1] + samples[mid]) / 2.0
        } else {
            samples[mid]
        };
        self.median_ns = Some(median);
    }
}

/// Declares a function running a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim/self");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        let mut ran = false;
        g.bench_function("sum", |b| {
            b.iter(|| (0..1000u64).sum::<u64>());
            ran = true;
        });
        g.bench_with_input(BenchmarkId::new("sum_n", 500), &500u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).full, "f/3");
        assert_eq!(BenchmarkId::from_parameter("xor").full, "xor");
        assert_eq!(BenchmarkId::from("plain").full, "plain");
    }
}
